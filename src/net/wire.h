#ifndef PASA_NET_WIRE_H_
#define PASA_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lbs/poi.h"
#include "model/service_request.h"
#include "pasa/incremental.h"

namespace pasa {
namespace net {

/// The pasa wire protocol, version 2: length-prefixed binary frames over a
/// byte stream (TCP). Every frame is
///
///   offset  size  field
///        0     4  magic      0x6E736170 ("pasn", little-endian)
///        4     1  version    1 or 2 (kWireVersion is what we emit)
///        5     1  type       MsgType
///        6     2  flags      v1: must be zero. v2: bit 0 = trace-context
///                            extension present; other bits are reserved
///                            and MUST be ignored by decoders.
///        8     4  payload length (little-endian, <= kMaxPayloadBytes;
///                            counts payload bytes only, never extensions)
///       12    17  trace-context extension, only when flags bit 0 is set:
///                            u64 trace id, u64 parent span id, u8 sampled
///    12[+17]    n  payload   fixed-width little-endian fields
///
/// All integers are fixed-width little-endian regardless of host byte
/// order (no varints). Strings are a u16 byte length followed by raw
/// bytes; vectors are a u32 element count followed by the elements.
///
/// Compatibility: a v2 decoder accepts v1 frames (zero flags, no
/// extensions) unchanged, tolerates v2 frames with unknown flag bits set,
/// and rejects version 0 and version >= 3 with a typed error — so a v1
/// client keeps working against a v2 server, and a future v3 fails loudly
/// instead of being misparsed. See docs/serving.md for the payload layout
/// of every message.
inline constexpr uint32_t kWireMagic = 0x6E736170;  // "pasn"
inline constexpr uint8_t kWireVersion = 2;
/// Oldest version this decoder still accepts.
inline constexpr uint8_t kWireMinVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
/// Header flag bits (v2+). Unknown bits are ignored on decode.
inline constexpr uint16_t kFrameFlagTraceContext = 1u << 0;
/// Size of the trace-context extension: trace id + parent span id + sampled.
inline constexpr size_t kTraceContextBytes = 8 + 8 + 1;
/// Upper bound on one frame's payload; larger length prefixes are rejected
/// before any allocation (a garbage or hostile length cannot balloon
/// memory).
inline constexpr size_t kMaxPayloadBytes = 1 << 20;
/// Per-field sanity bounds enforced by the decoders.
inline constexpr size_t kMaxStringBytes = 4096;
inline constexpr size_t kMaxParams = 64;
inline constexpr size_t kMaxPois = 4096;

/// Frame types. Requests flow client -> server, responses server -> client.
enum class MsgType : uint8_t {
  kServeRequest = 1,      ///< ServiceRequest -> full serve path (cloak + LBS)
  kServeResponse = 2,     ///< ServeResponseMsg
  kAnonymizeRequest = 3,  ///< ServiceRequest -> cloak only, no LBS hop
  kAnonymizeResponse = 4, ///< AnonymizeResponseMsg
  kSnapshotAdvance = 5,   ///< SnapshotAdvanceMsg (the per-epoch move feed)
  kSnapshotReport = 6,    ///< SnapshotReportMsg
  kHealthRequest = 7,     ///< empty payload
  kHealthResponse = 8,    ///< HealthResponseMsg
  kStatsRequest = 9,      ///< empty payload
  kStatsResponse = 10,    ///< StatsResponseMsg
  kError = 11,            ///< ErrorMsg (typed rejection, maybe retryable)
  kShutdownRequest = 12,  ///< empty payload; server acks then stops
  kShutdownResponse = 13, ///< empty payload
};

/// True for the types a well-formed frame may carry.
bool IsKnownMsgType(uint8_t type);

/// One decoded frame: its type plus the raw payload bytes, and — when the
/// frame carried the v2 trace-context extension — the request's distributed
/// trace identity (see obs/trace_context.h for the id scheme).
struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
  bool has_trace = false;
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool trace_sampled = false;

  friend bool operator==(const Frame& a, const Frame& b) = default;
};

/// Trace identity to stamp onto an outgoing frame (the v2 trace-context
/// extension). `parent_span_id` is the sender's span at send time, so the
/// receiver's spans parent correctly across the process boundary.
struct WireTraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = true;
};

// ---------------------------------------------------------------------------
// Message payloads.

/// Answer to a ServeRequest: the assigned rid, the cloak that was sent to
/// the LBS, the size of the anonymity group backing it (so a client can
/// verify group_size >= k end to end), and the POIs.
struct ServeResponseMsg {
  int64_t rid = 0;
  uint64_t group_size = 0;
  bool degraded = false;
  int64_t cloak_x1 = 0;
  int64_t cloak_y1 = 0;
  int64_t cloak_x2 = 0;
  int64_t cloak_y2 = 0;
  std::vector<PointOfInterest> pois;

  friend bool operator==(const ServeResponseMsg& a,
                         const ServeResponseMsg& b) = default;
};

/// Answer to an AnonymizeRequest: the cloak without the LBS hop.
struct AnonymizeResponseMsg {
  int64_t rid = 0;
  uint64_t group_size = 0;
  int64_t cloak_x1 = 0;
  int64_t cloak_y1 = 0;
  int64_t cloak_x2 = 0;
  int64_t cloak_y2 = 0;

  friend bool operator==(const AnonymizeResponseMsg& a,
                         const AnonymizeResponseMsg& b) = default;
};

/// A batch of user moves advancing the server to the next snapshot.
struct SnapshotAdvanceMsg {
  std::vector<UserMove> moves;

  friend bool operator==(const SnapshotAdvanceMsg& a,
                         const SnapshotAdvanceMsg& b) = default;
};

/// Wire form of csp::SnapshotReport.
struct SnapshotReportMsg {
  uint64_t moves_applied = 0;
  uint64_t moves_quarantined = 0;
  bool rebuilt = false;
  bool repair_fell_back_to_rebuild = false;
  uint64_t dp_rows_repaired = 0;
  int64_t policy_cost = 0;

  friend bool operator==(const SnapshotReportMsg& a,
                         const SnapshotReportMsg& b) = default;
};

/// Liveness + backpressure state of the server.
struct HealthResponseMsg {
  bool healthy = false;
  uint32_t queue_depth = 0;     ///< decoded requests awaiting dispatch
  uint32_t queue_capacity = 0;  ///< admission-control bound
  uint32_t connections = 0;

  friend bool operator==(const HealthResponseMsg& a,
                         const HealthResponseMsg& b) = default;
};

/// Wire form of CspServer::Stats plus the net-layer admission counter.
struct StatsResponseMsg {
  uint64_t requests_served = 0;
  uint64_t requests_degraded = 0;
  uint64_t requests_failed = 0;
  uint64_t requests_rejected = 0;
  uint64_t snapshots_advanced = 0;
  uint64_t moves_quarantined = 0;
  uint64_t rebuilds = 0;
  uint64_t incremental_updates = 0;
  uint64_t repair_fallbacks = 0;
  uint64_t admission_rejected = 0;

  friend bool operator==(const StatsResponseMsg& a,
                         const StatsResponseMsg& b) = default;
};

/// Typed rejection. `retry_after_micros` is non-zero only for retryable
/// admission-control rejects (kUnavailable with a full pending queue).
struct ErrorMsg {
  StatusCode code = StatusCode::kInternal;
  uint64_t retry_after_micros = 0;
  std::string message;

  friend bool operator==(const ErrorMsg& a, const ErrorMsg& b) = default;
};

// ---------------------------------------------------------------------------
// Encoding. Encoders append to a std::string byte buffer and cannot fail;
// bounds are the caller's contract (oversized fields would be rejected by
// the decoder on the other side).

std::string EncodeServiceRequest(const ServiceRequest& sr);
std::string EncodeServeResponse(const ServeResponseMsg& msg);
std::string EncodeAnonymizeResponse(const AnonymizeResponseMsg& msg);
std::string EncodeSnapshotAdvance(const SnapshotAdvanceMsg& msg);
std::string EncodeSnapshotReport(const SnapshotReportMsg& msg);
std::string EncodeHealthResponse(const HealthResponseMsg& msg);
std::string EncodeStatsResponse(const StatsResponseMsg& msg);
std::string EncodeError(const ErrorMsg& msg);

/// Wraps `payload` in a framed header. The result is ready to write to a
/// socket.
std::string EncodeFrame(MsgType type, std::string_view payload);

/// Same, but stamps the v2 trace-context extension (flags bit 0) so the
/// receiver can adopt the sender's trace. A zero `trace.trace_id` encodes a
/// plain frame with no extension.
std::string EncodeFrame(MsgType type, std::string_view payload,
                        const WireTraceContext& trace);

// ---------------------------------------------------------------------------
// Decoding. Every decoder consumes the exact payload and returns
// InvalidArgument on truncation, trailing bytes, or out-of-bounds counts —
// never crashes, never allocates proportionally to an unvalidated length.

Result<ServiceRequest> DecodeServiceRequest(std::string_view payload);
Result<ServeResponseMsg> DecodeServeResponse(std::string_view payload);
Result<AnonymizeResponseMsg> DecodeAnonymizeResponse(std::string_view payload);
Result<SnapshotAdvanceMsg> DecodeSnapshotAdvance(std::string_view payload);
Result<SnapshotReportMsg> DecodeSnapshotReport(std::string_view payload);
Result<HealthResponseMsg> DecodeHealthResponse(std::string_view payload);
Result<StatsResponseMsg> DecodeStatsResponse(std::string_view payload);
Result<ErrorMsg> DecodeError(std::string_view payload);

/// Incremental frame decoder for one connection's byte stream. Feed bytes
/// as they arrive (partial reads and torn frames are fine — the decoder
/// simply waits for more), then poll Next() until it reports kNeedMore.
///
/// A header that can never become a valid frame (bad magic, unsupported
/// version, non-zero v1 reserved bits, unknown type, oversized length) is a
/// kError with a typed InvalidArgument status; the stream is then
/// desynchronized beyond repair and the connection should be closed. v1 and
/// v2 frames both decode; v2 frames with unknown flag bits are tolerated.
class FrameDecoder {
 public:
  enum class Poll {
    kFrame,     ///< *frame was filled with one complete frame
    kNeedMore,  ///< the buffered bytes do not yet hold a full frame
    kError,     ///< *error holds the typed rejection; close the connection
  };

  void Feed(const char* data, size_t size) { buffer_.append(data, size); }
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame from the buffered bytes.
  Poll Next(Frame* frame, Status* error);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// Approximate heap bytes of the receive buffer — capacity, not size,
  /// because the allocation is what the process pays for (memory
  /// accounting, obs/mem.h).
  uint64_t ApproxBytes() const {
    return buffer_.capacity() <= 15 ? 0 : buffer_.capacity() + 1;
  }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  ///< prefix of buffer_ already handed out as frames
};

}  // namespace net
}  // namespace pasa

#endif  // PASA_NET_WIRE_H_
