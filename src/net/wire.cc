#include "net/wire.h"

#include <cstring>

namespace pasa {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// Primitive little-endian writers. Byte-by-byte shifts make the encoding
// independent of host endianness.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    PutU8(out, static_cast<uint8_t>(v >> shift));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    PutU8(out, static_cast<uint8_t>(v >> shift));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutBool(std::string* out, bool v) { PutU8(out, v ? 1 : 0); }

void PutString(std::string* out, std::string_view s) {
  // Encoders truncate rather than emit a frame the decoder must reject.
  const size_t n = s.size() < kMaxStringBytes ? s.size() : kMaxStringBytes;
  PutU16(out, static_cast<uint16_t>(n));
  out->append(s.data(), n);
}

// ---------------------------------------------------------------------------
// Primitive reader with explicit bounds checking. Every Get* returns false
// on underflow; decoders translate that into one typed error.

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  bool Done() const { return remaining() == 0; }

  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool GetU16(uint16_t* v) {
    uint8_t lo, hi;
    if (!GetU8(&lo) || !GetU8(&hi)) return false;
    *v = static_cast<uint16_t>(lo | (static_cast<uint16_t>(hi) << 8));
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t out = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
             << shift;
    }
    *v = out;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t out = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
             << shift;
    }
    *v = out;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool GetBool(bool* v) {
    uint8_t u;
    if (!GetU8(&u)) return false;
    *v = u != 0;
    return true;
  }

  bool GetString(std::string* s) {
    uint16_t n;
    if (!GetU16(&n)) return false;
    if (n > kMaxStringBytes || remaining() < n) return false;
    s->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("wire: truncated or malformed ") +
                                 what + " payload");
}

Status Trailing(const char* what) {
  return Status::InvalidArgument(std::string("wire: trailing bytes after ") +
                                 what + " payload");
}

}  // namespace

bool IsKnownMsgType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kServeRequest) &&
         type <= static_cast<uint8_t>(MsgType::kShutdownResponse);
}

// ---------------------------------------------------------------------------
// Encoders.

std::string EncodeServiceRequest(const ServiceRequest& sr) {
  std::string out;
  PutI64(&out, sr.sender);
  PutI64(&out, sr.location.x);
  PutI64(&out, sr.location.y);
  const size_t params =
      sr.params.size() < kMaxParams ? sr.params.size() : kMaxParams;
  PutU16(&out, static_cast<uint16_t>(params));
  for (size_t i = 0; i < params; ++i) {
    PutString(&out, sr.params[i].name);
    PutString(&out, sr.params[i].value);
  }
  return out;
}

std::string EncodeServeResponse(const ServeResponseMsg& msg) {
  std::string out;
  PutI64(&out, msg.rid);
  PutU64(&out, msg.group_size);
  PutBool(&out, msg.degraded);
  PutI64(&out, msg.cloak_x1);
  PutI64(&out, msg.cloak_y1);
  PutI64(&out, msg.cloak_x2);
  PutI64(&out, msg.cloak_y2);
  const size_t pois = msg.pois.size() < kMaxPois ? msg.pois.size() : kMaxPois;
  PutU32(&out, static_cast<uint32_t>(pois));
  for (size_t i = 0; i < pois; ++i) {
    PutI64(&out, msg.pois[i].id);
    PutI64(&out, msg.pois[i].location.x);
    PutI64(&out, msg.pois[i].location.y);
    PutString(&out, msg.pois[i].category);
  }
  return out;
}

std::string EncodeAnonymizeResponse(const AnonymizeResponseMsg& msg) {
  std::string out;
  PutI64(&out, msg.rid);
  PutU64(&out, msg.group_size);
  PutI64(&out, msg.cloak_x1);
  PutI64(&out, msg.cloak_y1);
  PutI64(&out, msg.cloak_x2);
  PutI64(&out, msg.cloak_y2);
  return out;
}

std::string EncodeSnapshotAdvance(const SnapshotAdvanceMsg& msg) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(msg.moves.size()));
  for (const UserMove& move : msg.moves) {
    PutU32(&out, move.row);
    PutI64(&out, move.from.x);
    PutI64(&out, move.from.y);
    PutI64(&out, move.to.x);
    PutI64(&out, move.to.y);
  }
  return out;
}

std::string EncodeSnapshotReport(const SnapshotReportMsg& msg) {
  std::string out;
  PutU64(&out, msg.moves_applied);
  PutU64(&out, msg.moves_quarantined);
  PutBool(&out, msg.rebuilt);
  PutBool(&out, msg.repair_fell_back_to_rebuild);
  PutU64(&out, msg.dp_rows_repaired);
  PutI64(&out, msg.policy_cost);
  return out;
}

std::string EncodeHealthResponse(const HealthResponseMsg& msg) {
  std::string out;
  PutBool(&out, msg.healthy);
  PutU32(&out, msg.queue_depth);
  PutU32(&out, msg.queue_capacity);
  PutU32(&out, msg.connections);
  return out;
}

std::string EncodeStatsResponse(const StatsResponseMsg& msg) {
  std::string out;
  PutU64(&out, msg.requests_served);
  PutU64(&out, msg.requests_degraded);
  PutU64(&out, msg.requests_failed);
  PutU64(&out, msg.requests_rejected);
  PutU64(&out, msg.snapshots_advanced);
  PutU64(&out, msg.moves_quarantined);
  PutU64(&out, msg.rebuilds);
  PutU64(&out, msg.incremental_updates);
  PutU64(&out, msg.repair_fallbacks);
  PutU64(&out, msg.admission_rejected);
  return out;
}

std::string EncodeError(const ErrorMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(msg.code));
  PutU64(&out, msg.retry_after_micros);
  PutString(&out, msg.message);
  return out;
}

std::string EncodeFrame(MsgType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kWireMagic);
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU16(&out, 0);  // flags
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

std::string EncodeFrame(MsgType type, std::string_view payload,
                        const WireTraceContext& trace) {
  if (trace.trace_id == 0) return EncodeFrame(type, payload);
  std::string out;
  out.reserve(kFrameHeaderBytes + kTraceContextBytes + payload.size());
  PutU32(&out, kWireMagic);
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU16(&out, kFrameFlagTraceContext);
  // The length prefix counts payload bytes only; the fixed-width extension
  // rides between header and payload.
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, trace.trace_id);
  PutU64(&out, trace.parent_span_id);
  PutBool(&out, trace.sampled);
  out.append(payload);
  return out;
}

// ---------------------------------------------------------------------------
// Decoders.

Result<ServiceRequest> DecodeServiceRequest(std::string_view payload) {
  Reader r(payload);
  ServiceRequest sr;
  uint16_t params = 0;
  if (!r.GetI64(&sr.sender) || !r.GetI64(&sr.location.x) ||
      !r.GetI64(&sr.location.y) || !r.GetU16(&params)) {
    return Truncated("ServiceRequest");
  }
  if (params > kMaxParams) {
    return Status::InvalidArgument("wire: ServiceRequest parameter count " +
                                   std::to_string(params) + " exceeds " +
                                   std::to_string(kMaxParams));
  }
  sr.params.reserve(params);
  for (uint16_t i = 0; i < params; ++i) {
    NameValue nv;
    if (!r.GetString(&nv.name) || !r.GetString(&nv.value)) {
      return Truncated("ServiceRequest");
    }
    sr.params.push_back(std::move(nv));
  }
  if (!r.Done()) return Trailing("ServiceRequest");
  return sr;
}

Result<ServeResponseMsg> DecodeServeResponse(std::string_view payload) {
  Reader r(payload);
  ServeResponseMsg msg;
  uint32_t pois = 0;
  if (!r.GetI64(&msg.rid) || !r.GetU64(&msg.group_size) ||
      !r.GetBool(&msg.degraded) || !r.GetI64(&msg.cloak_x1) ||
      !r.GetI64(&msg.cloak_y1) || !r.GetI64(&msg.cloak_x2) ||
      !r.GetI64(&msg.cloak_y2) || !r.GetU32(&pois)) {
    return Truncated("ServeResponse");
  }
  if (pois > kMaxPois) {
    return Status::InvalidArgument("wire: ServeResponse POI count " +
                                   std::to_string(pois) + " exceeds " +
                                   std::to_string(kMaxPois));
  }
  // 26 = id + location + an empty category; guards reserve() against a
  // count that cannot possibly fit in the remaining bytes.
  if (r.remaining() < static_cast<size_t>(pois) * 26) {
    return Truncated("ServeResponse");
  }
  msg.pois.reserve(pois);
  for (uint32_t i = 0; i < pois; ++i) {
    PointOfInterest poi;
    if (!r.GetI64(&poi.id) || !r.GetI64(&poi.location.x) ||
        !r.GetI64(&poi.location.y) || !r.GetString(&poi.category)) {
      return Truncated("ServeResponse");
    }
    msg.pois.push_back(std::move(poi));
  }
  if (!r.Done()) return Trailing("ServeResponse");
  return msg;
}

Result<AnonymizeResponseMsg> DecodeAnonymizeResponse(
    std::string_view payload) {
  Reader r(payload);
  AnonymizeResponseMsg msg;
  if (!r.GetI64(&msg.rid) || !r.GetU64(&msg.group_size) ||
      !r.GetI64(&msg.cloak_x1) || !r.GetI64(&msg.cloak_y1) ||
      !r.GetI64(&msg.cloak_x2) || !r.GetI64(&msg.cloak_y2)) {
    return Truncated("AnonymizeResponse");
  }
  if (!r.Done()) return Trailing("AnonymizeResponse");
  return msg;
}

Result<SnapshotAdvanceMsg> DecodeSnapshotAdvance(std::string_view payload) {
  Reader r(payload);
  SnapshotAdvanceMsg msg;
  uint32_t moves = 0;
  if (!r.GetU32(&moves)) return Truncated("SnapshotAdvance");
  // Each move is exactly 36 bytes; reject a count the payload cannot hold
  // before reserving anything.
  if (r.remaining() != static_cast<size_t>(moves) * 36) {
    return r.remaining() < static_cast<size_t>(moves) * 36
               ? Truncated("SnapshotAdvance")
               : Trailing("SnapshotAdvance");
  }
  msg.moves.reserve(moves);
  for (uint32_t i = 0; i < moves; ++i) {
    UserMove move;
    if (!r.GetU32(&move.row) || !r.GetI64(&move.from.x) ||
        !r.GetI64(&move.from.y) || !r.GetI64(&move.to.x) ||
        !r.GetI64(&move.to.y)) {
      return Truncated("SnapshotAdvance");
    }
    msg.moves.push_back(move);
  }
  return msg;
}

Result<SnapshotReportMsg> DecodeSnapshotReport(std::string_view payload) {
  Reader r(payload);
  SnapshotReportMsg msg;
  if (!r.GetU64(&msg.moves_applied) || !r.GetU64(&msg.moves_quarantined) ||
      !r.GetBool(&msg.rebuilt) ||
      !r.GetBool(&msg.repair_fell_back_to_rebuild) ||
      !r.GetU64(&msg.dp_rows_repaired) || !r.GetI64(&msg.policy_cost)) {
    return Truncated("SnapshotReport");
  }
  if (!r.Done()) return Trailing("SnapshotReport");
  return msg;
}

Result<HealthResponseMsg> DecodeHealthResponse(std::string_view payload) {
  Reader r(payload);
  HealthResponseMsg msg;
  if (!r.GetBool(&msg.healthy) || !r.GetU32(&msg.queue_depth) ||
      !r.GetU32(&msg.queue_capacity) || !r.GetU32(&msg.connections)) {
    return Truncated("HealthResponse");
  }
  if (!r.Done()) return Trailing("HealthResponse");
  return msg;
}

Result<StatsResponseMsg> DecodeStatsResponse(std::string_view payload) {
  Reader r(payload);
  StatsResponseMsg msg;
  if (!r.GetU64(&msg.requests_served) || !r.GetU64(&msg.requests_degraded) ||
      !r.GetU64(&msg.requests_failed) || !r.GetU64(&msg.requests_rejected) ||
      !r.GetU64(&msg.snapshots_advanced) ||
      !r.GetU64(&msg.moves_quarantined) || !r.GetU64(&msg.rebuilds) ||
      !r.GetU64(&msg.incremental_updates) ||
      !r.GetU64(&msg.repair_fallbacks) ||
      !r.GetU64(&msg.admission_rejected)) {
    return Truncated("StatsResponse");
  }
  if (!r.Done()) return Trailing("StatsResponse");
  return msg;
}

Result<ErrorMsg> DecodeError(std::string_view payload) {
  Reader r(payload);
  ErrorMsg msg;
  uint8_t code = 0;
  if (!r.GetU8(&code) || !r.GetU64(&msg.retry_after_micros) ||
      !r.GetString(&msg.message)) {
    return Truncated("Error");
  }
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("wire: Error frame carries unknown "
                                   "status code " + std::to_string(code));
  }
  msg.code = static_cast<StatusCode>(code);
  if (!r.Done()) return Trailing("Error");
  return msg;
}

FrameDecoder::Poll FrameDecoder::Next(Frame* frame, Status* error) {
  // Compact the buffer once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::string_view pending =
      std::string_view(buffer_).substr(consumed_);
  if (pending.size() < kFrameHeaderBytes) return Poll::kNeedMore;

  Reader r(pending);
  uint32_t magic = 0, length = 0;
  uint8_t version = 0, type = 0;
  uint16_t flags = 0;
  r.GetU32(&magic);
  r.GetU8(&version);
  r.GetU8(&type);
  r.GetU16(&flags);
  r.GetU32(&length);
  if (magic != kWireMagic) {
    *error = Status::InvalidArgument("wire: bad frame magic");
    return Poll::kError;
  }
  if (version < kWireMinVersion || version > kWireVersion) {
    *error = Status::InvalidArgument("wire: unsupported protocol version " +
                                     std::to_string(version));
    return Poll::kError;
  }
  // v1 called these bytes "reserved, must be zero"; only v2 defines flags.
  // Unknown v2 flag bits are tolerated so minor extensions stay compatible.
  if (version == 1 && flags != 0) {
    *error = Status::InvalidArgument("wire: non-zero reserved header bits");
    return Poll::kError;
  }
  if (!IsKnownMsgType(type)) {
    *error = Status::InvalidArgument("wire: unknown frame type " +
                                     std::to_string(type));
    return Poll::kError;
  }
  if (length > kMaxPayloadBytes) {
    *error = Status::InvalidArgument("wire: oversized frame payload (" +
                                     std::to_string(length) + " bytes)");
    return Poll::kError;
  }
  const bool has_trace =
      version >= 2 && (flags & kFrameFlagTraceContext) != 0;
  const size_t extension = has_trace ? kTraceContextBytes : 0;
  if (pending.size() < kFrameHeaderBytes + extension + length) {
    return Poll::kNeedMore;
  }

  frame->type = static_cast<MsgType>(type);
  frame->has_trace = has_trace;
  frame->trace_id = 0;
  frame->parent_span_id = 0;
  frame->trace_sampled = false;
  if (has_trace) {
    r.GetU64(&frame->trace_id);
    r.GetU64(&frame->parent_span_id);
    r.GetBool(&frame->trace_sampled);
    // A zero trace id in the extension means "not actually traced".
    if (frame->trace_id == 0) frame->has_trace = false;
  }
  frame->payload.assign(pending.data() + kFrameHeaderBytes + extension,
                        length);
  consumed_ += kFrameHeaderBytes + extension + length;
  return Poll::kFrame;
}

}  // namespace net
}  // namespace pasa
