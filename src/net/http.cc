#include "net/http.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace pasa {
namespace net {
namespace {

constexpr size_t kMaxResponseBytes = 64 * 1024 * 1024;

bool IsTokenChar(char c) {
  // RFC 9110 tchar: the characters a method or header name may contain.
  static const char* extra = "!#$%&'*+-.^_`|~";
  return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
         std::strchr(extra, c) != nullptr;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void ParseQuery(std::string_view query,
                std::map<std::string, std::string>* out) {
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        (*out)[UrlDecode(pair)] = "";
      } else {
        (*out)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    start = end + 1;
  }
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && HexValue(s[i + 1]) >= 0 &&
               HexValue(s[i + 2]) >= 0) {
      out += static_cast<char>(HexValue(s[i + 1]) * 16 + HexValue(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

void HttpParser::Feed(const char* data, size_t size) {
  if (broken_) return;
  buffer_.append(data, size);
}

HttpParser::Poll HttpParser::Next(HttpRequest* request, Status* error) {
  const auto fail = [&](int status, std::string message) {
    broken_ = true;
    http_status_ = status;
    error_ = Status::InvalidArgument(std::move(message));
    *error = error_;
    return Poll::kError;
  };
  if (broken_) {
    *error = error_;
    return Poll::kError;
  }

  // Locate the end of the head. CRLFCRLF per the RFC; bare LFLF is
  // tolerated, as every mainstream server does.
  size_t head_end = buffer_.find("\r\n\r\n");
  size_t body_start;
  if (head_end != std::string::npos) {
    body_start = head_end + 4;
  } else {
    head_end = buffer_.find("\n\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return fail(431, "request head exceeds " +
                             std::to_string(limits_.max_head_bytes) +
                             " bytes");
      }
      return Poll::kNeedMore;
    }
    body_start = head_end + 2;
  }
  if (head_end > limits_.max_head_bytes) {
    return fail(431, "request head exceeds " +
                         std::to_string(limits_.max_head_bytes) + " bytes");
  }

  // Split the head into lines (tolerating both CRLF and LF).
  const std::string head = buffer_.substr(0, head_end);
  HttpRequest parsed;
  size_t line_start = 0;
  bool first_line = true;
  while (line_start <= head.size()) {
    size_t line_end = head.find('\n', line_start);
    if (line_end == std::string::npos) line_end = head.size();
    std::string_view line(head.data() + line_start, line_end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    line_start = line_end + 1;
    if (line.empty()) {
      if (first_line) continue;  // stray leading blank line
      break;
    }
    if (first_line) {
      first_line = false;
      // METHOD SP TARGET SP HTTP/1.x
      const size_t sp1 = line.find(' ');
      const size_t sp2 = line.rfind(' ');
      if (sp1 == std::string_view::npos || sp2 == sp1) {
        return fail(400, "malformed request line");
      }
      parsed.method = std::string(line.substr(0, sp1));
      parsed.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
      const std::string_view version = line.substr(sp2 + 1);
      if (parsed.method.empty() || parsed.target.empty()) {
        return fail(400, "malformed request line");
      }
      for (const char c : parsed.method) {
        if (!IsTokenChar(c)) return fail(400, "invalid method");
      }
      for (const char c : parsed.target) {
        if (static_cast<unsigned char>(c) <= 0x20 || c == 0x7f) {
          return fail(400, "invalid request target");
        }
      }
      if (version == "HTTP/1.1") {
        parsed.minor_version = 1;
      } else if (version == "HTTP/1.0") {
        parsed.minor_version = 0;
      } else {
        return fail(505, "unsupported protocol version '" +
                             std::string(version) + "'");
      }
    } else {
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return fail(400, "malformed header field");
      }
      const std::string_view name = line.substr(0, colon);
      for (const char c : name) {
        if (!IsTokenChar(c)) return fail(400, "invalid header name");
      }
      parsed.headers[ToLower(name)] = std::string(Trim(line.substr(colon + 1)));
    }
  }
  if (first_line) return fail(400, "empty request head");

  // The admin plane is read-only: any body (or transfer coding) is refused.
  const auto te = parsed.headers.find("transfer-encoding");
  if (te != parsed.headers.end()) {
    return fail(413, "request bodies are not accepted");
  }
  const auto cl = parsed.headers.find("content-length");
  if (cl != parsed.headers.end()) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(cl->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || cl->second.empty()) {
      return fail(400, "malformed Content-Length");
    }
    if (n != 0) return fail(413, "request bodies are not accepted");
  }

  // Split the target; decide keep-alive.
  const size_t qmark = parsed.target.find('?');
  if (qmark == std::string::npos) {
    parsed.path = parsed.target;
  } else {
    parsed.path = parsed.target.substr(0, qmark);
    ParseQuery(std::string_view(parsed.target).substr(qmark + 1),
               &parsed.query);
  }
  parsed.keep_alive = parsed.minor_version >= 1;
  const auto conn = parsed.headers.find("connection");
  if (conn != parsed.headers.end()) {
    const std::string value = ToLower(conn->second);
    if (value.find("close") != std::string::npos) {
      parsed.keep_alive = false;
    } else if (value.find("keep-alive") != std::string::npos) {
      parsed.keep_alive = true;
    }
  }

  buffer_.erase(0, body_start);
  *request = std::move(parsed);
  return Poll::kRequest;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Internal Server Error";
  }
}

std::string EncodeHttpResponse(int status, std::string_view content_type,
                               std::string_view body, bool keep_alive,
                               bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpStatusText(status) + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  if (!head_only) out += body;
  return out;
}

// ---------------------------------------------------------------------------
// Blocking client helpers.

namespace {

Result<int> ConnectLoopback(uint16_t port, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (true) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable("connect to 127.0.0.1:" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    }
    struct timespec pause = {0, 20 * 1000 * 1000};  // 20 ms between retries
    nanosleep(&pause, nullptr);
  }
}

Result<HttpResponse> ParseResponse(const std::string& raw,
                                   bool allow_missing_body) {
  size_t head_end = raw.find("\r\n\r\n");
  size_t body_start;
  if (head_end != std::string::npos) {
    body_start = head_end + 4;
  } else {
    head_end = raw.find("\n\n");
    if (head_end == std::string::npos) {
      return Status::Internal("truncated HTTP response (no header terminator)");
    }
    body_start = head_end + 2;
  }
  HttpResponse response;
  const std::string head = raw.substr(0, head_end);
  size_t line_start = 0;
  bool first_line = true;
  while (line_start <= head.size()) {
    size_t line_end = head.find('\n', line_start);
    if (line_end == std::string::npos) line_end = head.size();
    std::string_view line(head.data() + line_start, line_end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    line_start = line_end + 1;
    if (line.empty()) break;
    if (first_line) {
      first_line = false;
      // HTTP/1.x SP STATUS SP REASON
      const size_t sp1 = line.find(' ');
      if (sp1 == std::string_view::npos || sp1 + 4 > line.size()) {
        return Status::Internal("malformed HTTP status line");
      }
      response.status =
          std::atoi(std::string(line.substr(sp1 + 1, 3)).c_str());
      if (response.status < 100 || response.status > 599) {
        return Status::Internal("malformed HTTP status line");
      }
    } else {
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) continue;
      response.headers[ToLower(line.substr(0, colon))] =
          std::string(Trim(line.substr(colon + 1)));
    }
  }
  if (first_line) return Status::Internal("empty HTTP response");
  response.body = raw.substr(body_start);
  const auto cl = response.headers.find("content-length");
  if (cl != response.headers.end()) {
    const size_t expected = std::strtoull(cl->second.c_str(), nullptr, 10);
    if (response.body.size() < expected) {
      // A HEAD response carries Content-Length for a body it never sends.
      if (!allow_missing_body || !response.body.empty()) {
        return Status::Internal("truncated HTTP response body");
      }
    } else {
      response.body.resize(expected);
    }
  }
  return response;
}

}  // namespace

Result<HttpResponse> HttpTransact(uint16_t port,
                                  const std::string& request_bytes,
                                  double timeout_seconds) {
  Result<int> fd = ConnectLoopback(port, timeout_seconds);
  if (!fd.ok()) return fd.status();
  const int sock = *fd;
  // A HEAD response omits the body its Content-Length describes.
  const bool head_request = request_bytes.rfind("HEAD ", 0) == 0;

  size_t written = 0;
  while (written < request_bytes.size()) {
    const ssize_t n = send(sock, request_bytes.data() + written,
                           request_bytes.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close(sock);
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  // Half-close so a server reading to EOF (none of ours, but be a good
  // citizen) sees the request end.
  shutdown(sock, SHUT_WR);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  std::string raw;
  char buf[16 * 1024];
  while (true) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      close(sock);
      return Status::DeadlineExceeded("HTTP response timed out");
    }
    pollfd p{sock, POLLIN, 0};
    const int pr = poll(&p, 1, static_cast<int>(remaining.count()));
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) {
      close(sock);
      return Status::DeadlineExceeded("HTTP response timed out");
    }
    const ssize_t n = recv(sock, buf, sizeof(buf), 0);
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
      if (raw.size() > kMaxResponseBytes) {
        close(sock);
        return Status::Internal("HTTP response exceeds the size limit");
      }
      // With a Content-Length we can stop as soon as the body is complete
      // (keep-alive servers won't close the connection for us).
      Result<HttpResponse> parsed = ParseResponse(raw, head_request);
      if (parsed.ok() &&
          parsed->headers.find("content-length") != parsed->headers.end()) {
        close(sock);
        return parsed;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or hard error: parse what we have
  }
  close(sock);
  return ParseResponse(raw, head_request);
}

Result<HttpResponse> HttpGet(uint16_t port, const std::string& target,
                             double timeout_seconds) {
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\n"
                              "Host: 127.0.0.1\r\n"
                              "Connection: close\r\n"
                              "\r\n";
  return HttpTransact(port, request, timeout_seconds);
}

}  // namespace net
}  // namespace pasa
