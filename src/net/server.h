#ifndef PASA_NET_SERVER_H_
#define PASA_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "csp/server.h"
#include "net/http.h"
#include "net/wire.h"

namespace pasa {
namespace net {

/// Well-known objective name for the socket serving path (decode + queue +
/// serve + encode, the latency a remote client actually experiences).
inline constexpr char kSloNetServeLatency[] = "net/serve_latency";

/// Well-known objective name for event-loop saturation: the busy time of
/// each worked loop iteration, tracked as a latency objective so burn-rate
/// alerting fires when the single-threaded loop stops keeping up.
inline constexpr char kSloNetLoopSaturation[] = "net/loop_saturation";

/// Tuning for the network front end.
struct NetServerOptions {
  /// TCP port to listen on; 0 picks a free port (read it back via port()).
  uint16_t port = 0;
  int backlog = 128;
  /// Connections beyond this are accepted and immediately closed.
  size_t max_connections = 1024;
  /// Bounded pending-request queue: decoded requests waiting for a
  /// dispatch slot. When full, new requests are rejected with kUnavailable
  /// + retry_after_micros instead of queueing without bound.
  size_t max_pending = 4096;
  /// Requests dispatched into CspServer per event-loop tick; bounds how
  /// long the loop stays away from the sockets.
  size_t max_batch = 256;
  /// Forces the portable poll() backend even where epoll is available.
  bool use_poll = false;
  /// Retry-after hint carried by admission-control rejections.
  uint64_t retry_after_micros = 1000;
  /// Graceful-drain budget on shutdown: the server stops accepting, keeps
  /// dispatching the already-admitted pending queue for at most this long,
  /// then answers whatever is still queued with a typed kUnavailable.
  /// Request frames decoded while draining are rejected the same way
  /// instead of extending the drain. 0 fails the whole queue immediately.
  double drain_deadline_seconds = 1.0;
  /// Always-on tail-trace capture: arms the global obs::TailTraceRing so
  /// every dispatched request is traced (adopting the client's wire context
  /// when present, originating one otherwise) and its complete span tree
  /// competes for the slowest-N sliding window, served at GET /trace and by
  /// `pasa_cli slowest`. Anomalous (non-served) requests are always kept.
  bool tail_traces = true;
  /// N slowest requests retained per window.
  size_t tail_slowest = 8;
  double tail_window_seconds = 60.0;
  /// Emits OpenMetrics exemplars on /metrics histogram buckets, pointing at
  /// the trace id of each bucket's slowest traced request.
  bool exemplars = false;
  /// Admin (operator) plane: when >= 0, a second loopback listener on this
  /// port (0 picks a free one, read back via admin_port()) serves HTTP GETs
  /// on the same event loop — /metrics, /healthz, /slo, /vars, /trace,
  /// /profile?seconds=N. Admin traffic is operator plane throughout: its
  /// connections do not count against max_connections, its requests are
  /// answered inline (never queued behind admission control), and the
  /// net/* fault injection points skip it, so telemetry stays reachable
  /// exactly when the serving plane is overloaded or being tortured.
  int admin_port = -1;
};

/// Single-threaded non-blocking network front end for CspServer: one event
/// loop (epoll on Linux, poll elsewhere or with use_poll) accepts
/// connections, feeds their byte streams through per-connection
/// FrameDecoders, batches decoded requests into CspServer calls once per
/// tick, and writes length-prefixed responses back — tolerating partial
/// reads, torn writes and hostile frames on every connection.
///
/// All CspServer calls happen on the loop thread, so the (single-threaded)
/// CSP needs no locking. Backpressure is a bounded pending-request queue:
/// when it is full, serve/anonymize/advance requests get a typed
/// kUnavailable Error frame with a retry-after hint (admission control)
/// while Health/Stats/Shutdown — the operator plane — bypass admission.
///
/// With NetServerOptions::admin_port set, the same event loop additionally
/// serves a live HTTP telemetry plane (GET /metrics, /healthz, /slo,
/// /vars, /trace, /profile?seconds=N) on a second loopback listener; admin
/// traffic
/// follows the operator-plane bypass rules (no max_connections cap, no
/// admission queue, no net/* fault injection).
///
/// Observability: per-connection/per-frame counters and latency histograms
/// in the MetricsRegistry ("net/..."), a sliding-window latency histogram
/// ("net/window/serve_latency_seconds") and the kSloNetServeLatency SLO
/// when those stacks are armed, and a ScopedProvenanceRecord spanning
/// decode -> serve -> encode per dispatched request. Fault injection:
/// net/slow_read (reads deliver one byte), net/torn_write (responses are
/// written half a frame at a time), net/conn_drop (the connection is
/// severed right before its response) — none of which may ever weaken
/// k-anonymity, only latency and availability.
class NetServer {
 public:
  /// Binds, listens and spawns the event loop. The returned server is
  /// already serving.
  static Result<std::unique_ptr<NetServer>> Start(
      CspServer* csp, const NetServerOptions& options);

  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// The bound admin-plane port; 0 when no admin listener was requested.
  uint16_t admin_port() const { return admin_port_; }

  /// Signals the loop to finish and joins it. Idempotent.
  void Stop();

  /// Blocks until the loop exits (a kShutdownRequest frame or Stop()), at
  /// most `timeout_seconds`. Returns true when the loop has exited.
  bool WaitForShutdown(double timeout_seconds);

  /// Monotonic counters, readable from any thread.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;   ///< includes drops and rejects
    uint64_t connections_rejected = 0; ///< over max_connections
    uint64_t frames_decoded = 0;
    uint64_t frames_rejected = 0;      ///< garbage/oversized/unknown frames
    uint64_t requests_served = 0;      ///< responses written (incl. errors)
    uint64_t admission_rejected = 0;   ///< kUnavailable, queue full
    uint64_t drain_rejected = 0;       ///< kUnavailable, arrived mid-drain
    uint64_t drain_expired = 0;        ///< kUnavailable, drain deadline hit
    uint64_t faults_injected = 0;      ///< net/* fault fires
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t admin_connections = 0;    ///< admin-plane accepts
    uint64_t admin_requests = 0;       ///< HTTP requests answered
  };
  Stats stats() const;

 private:
  /// One readiness event from the poller backend.
  struct PollEvent {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool broken = false;  ///< HUP/ERR: close the connection
  };

  /// Minimal readiness-notification abstraction: epoll where available,
  /// poll() as the portable fallback. Level-triggered in both backends.
  class Poller;
  class EpollPoller;
  class PollPoller;

  /// Per-connection state.
  struct Conn {
    uint64_t id = 0;  ///< never reused, unlike the fd
    int fd = -1;
    FrameDecoder decoder;
    std::string outbuf;        ///< encoded responses awaiting write
    size_t out_offset = 0;     ///< bytes of outbuf already written
    bool close_after_flush = false;
    /// Set while net/torn_write holds back the tail of a frame; the
    /// remainder goes out on the next tick.
    bool torn = false;
    /// Admin-plane connection: bytes go through `http` instead of
    /// `decoder`, and the net/* fault injection points skip it.
    bool is_admin = false;
    std::unique_ptr<HttpParser> http;  ///< set iff is_admin
  };

  /// One admitted request waiting for a dispatch slot.
  struct Pending {
    uint64_t conn_id = 0;
    Frame frame;
    double decode_seconds = 0.0;
    std::chrono::steady_clock::time_point enqueued;
  };

  NetServer(CspServer* csp, const NetServerOptions& options);

  void Loop();
  /// Loop-saturation telemetry for one worked tick (events or dispatches):
  /// records the tick's busy seconds and the post-tick queue depth into the
  /// net/loop_lag_seconds histogram, the sliding windows and the
  /// net/loop_saturation SLO.
  void RecordLoopTick(double busy_seconds);
  /// Refreshes the accountant's net/* counters (connection buffers and
  /// pending payload bytes) from live state. Cheap (one pass over conns_),
  /// so it runs both at scrape time and periodically from the loop while
  /// accounting is armed.
  void RefreshMemoryStats();
  void HandleListener();
  /// Accepts admin-plane connections: never rejected for max_connections
  /// (the operator plane must stay reachable under overload).
  void HandleAdminListener();
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  /// Parses and answers as many HTTP requests as the admin connection's
  /// buffer holds, inline on the loop thread (admission bypass).
  void DrainHttp(Conn* conn);
  /// Routes one parsed admin request (/metrics, /healthz, /slo, /vars,
  /// /trace, /profile) and queues the response.
  void HandleAdminRequest(Conn* conn, const HttpRequest& request);
  /// Decodes as many frames as the connection's buffer holds, admitting
  /// request frames and answering the operator plane inline.
  void DrainDecoder(Conn* conn);
  /// Routes one admitted frame through CspServer and encodes the response.
  void Dispatch(const Pending& pending);
  void DispatchBatch();
  /// Drain deadline expired: answers every still-queued request with a
  /// typed kUnavailable so no client hangs on a dying server.
  void FailPendingUnavailable();
  /// Appends an encoded response frame to the connection's outbuf.
  void QueueResponse(Conn* conn, MsgType type, const std::string& payload);
  void QueueError(Conn* conn, const Status& status, uint64_t retry_after);
  void FlushConn(Conn* conn);
  void CloseConn(uint64_t conn_id);
  Conn* FindConn(uint64_t conn_id);

  CspServer* const csp_;
  const NetServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  uint16_t admin_port_ = 0;
  int admin_listen_fd_ = -1;  ///< -1 when the admin plane is disabled
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: Stop() wakes the poller

  std::unique_ptr<Poller> poller_;
  std::map<int, Conn> conns_;             ///< by fd; loop thread only
  std::map<uint64_t, int> fd_of_conn_;    ///< conn id -> fd; loop thread only
  /// Loop thread only. The accounting allocator self-charges the queue's
  /// node storage to the net/pending_queue subsystem counter.
  std::deque<Pending, obs::AccountingAllocator<Pending>> pending_;
  uint64_t next_conn_id_ = 1;
  uint64_t loop_ticks_ = 0;  ///< worked ticks; loop thread only
  /// When the loop was spawned; /healthz uptime.
  std::chrono::steady_clock::time_point started_at_;
  bool stopping_ = false;  ///< drain outbufs, then exit (loop thread only)
  /// First tick that saw stopping_; anchors drain_deadline_seconds (loop
  /// thread only).
  std::optional<std::chrono::steady_clock::time_point> drain_started_;

  std::thread loop_;
  std::atomic<bool> stop_requested_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool loop_exited_ = false;

  // Stats counters (atomics: written by the loop, read from any thread).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> frames_decoded_{0};
  std::atomic<uint64_t> frames_rejected_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> admission_rejected_{0};
  std::atomic<uint64_t> drain_rejected_{0};
  std::atomic<uint64_t> drain_expired_{0};
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> admin_connections_{0};
  std::atomic<uint64_t> admin_requests_{0};
};

}  // namespace net
}  // namespace pasa

#endif  // PASA_NET_SERVER_H_
