#include "net/server.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "common/timer.h"
#include "fault/injector.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/provenance.h"
#include "obs/slo.h"
#include "obs/tail_trace.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "obs/trace_sink.h"
#include "obs/window.h"

#include <optional>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace pasa {
namespace net {
namespace {

constexpr size_t kReadChunk = 64 * 1024;

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Creates a non-blocking loopback listener on `port` (0 picks a free one)
// and reports the bound port through `bound_port`.
Result<int> ListenOnLoopback(uint16_t port, int backlog,
                             uint16_t* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::Unavailable(std::string("bind to port ") +
                                         std::to_string(port) + ": " +
                                         std::strerror(errno));
    close(fd);
    return s;
  }
  if (listen(fd, backlog) < 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status s = Status::Internal(std::string("getsockname: ") +
                                      std::strerror(errno));
    close(fd);
    return s;
  }
  *bound_port = ntohs(addr.sin_port);
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    close(fd);
    return s;
  }
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// Poller backends.

class NetServer::Poller {
 public:
  virtual ~Poller() = default;
  virtual Status Add(int fd) = 0;
  virtual void Remove(int fd) = 0;
  /// Level-triggered: write interest stays until turned off.
  virtual void SetWriteInterest(int fd, bool on) = 0;
  virtual Status Wait(int timeout_ms, std::vector<PollEvent>* events) = 0;
};

#ifdef __linux__
class NetServer::EpollPoller : public Poller {
 public:
  static Result<std::unique_ptr<Poller>> Create() {
    const int fd = epoll_create1(0);
    if (fd < 0) {
      return Status::Internal(std::string("epoll_create1: ") +
                              std::strerror(errno));
    }
    auto poller = std::unique_ptr<EpollPoller>(new EpollPoller());
    poller->epoll_fd_ = fd;
    return std::unique_ptr<Poller>(std::move(poller));
  }

  ~EpollPoller() override {
    if (epoll_fd_ >= 0) close(epoll_fd_);
  }

  Status Add(int fd) override {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Status::Internal(std::string("epoll_ctl(ADD): ") +
                              std::strerror(errno));
    }
    return Status::Ok();
  }

  void Remove(int fd) override {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  void SetWriteInterest(int fd, bool on) override {
    epoll_event ev{};
    ev.events = on ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }

  Status Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    epoll_event raw[128];
    const int n = epoll_wait(epoll_fd_, raw, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::Ok();
      return Status::Internal(std::string("epoll_wait: ") +
                              std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      PollEvent event;
      event.fd = raw[i].data.fd;
      event.readable = (raw[i].events & EPOLLIN) != 0;
      event.writable = (raw[i].events & EPOLLOUT) != 0;
      event.broken = (raw[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      events->push_back(event);
    }
    return Status::Ok();
  }

 private:
  EpollPoller() = default;
  int epoll_fd_ = -1;
};
#endif  // __linux__

class NetServer::PollPoller : public Poller {
 public:
  Status Add(int fd) override {
    interest_[fd] = POLLIN;
    return Status::Ok();
  }

  void Remove(int fd) override { interest_.erase(fd); }

  void SetWriteInterest(int fd, bool on) override {
    const auto it = interest_.find(fd);
    if (it == interest_.end()) return;
    it->second = static_cast<short>(POLLIN | (on ? POLLOUT : 0));
  }

  Status Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    fds_.clear();
    for (const auto& [fd, mask] : interest_) {
      fds_.push_back(pollfd{fd, mask, 0});
    }
    const int n = poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::Ok();
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent event;
      event.fd = p.fd;
      event.readable = (p.revents & POLLIN) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      event.broken = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      events->push_back(event);
    }
    return Status::Ok();
  }

 private:
  std::map<int, short> interest_;
  std::vector<pollfd> fds_;
};

// ---------------------------------------------------------------------------
// Lifecycle.

NetServer::NetServer(CspServer* csp, const NetServerOptions& options)
    : csp_(csp),
      options_(options),
      pending_(obs::AccountingAllocator<Pending>(
          &obs::MemoryAccountant::Global().GetCounter("net/pending_queue"))) {
}

Result<std::unique_ptr<NetServer>> NetServer::Start(
    CspServer* csp, const NetServerOptions& options) {
  if (csp == nullptr) {
    return Status::InvalidArgument("NetServer requires a CspServer");
  }
  if (options.drain_deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "drain_deadline_seconds must be non-negative");
  }
  auto server = std::unique_ptr<NetServer>(new NetServer(csp, options));

  Result<int> listen_fd =
      ListenOnLoopback(options.port, options.backlog, &server->port_);
  if (!listen_fd.ok()) return listen_fd.status();
  server->listen_fd_ = *listen_fd;

  if (options.admin_port >= 0) {
    Result<int> admin_fd =
        ListenOnLoopback(static_cast<uint16_t>(options.admin_port),
                         options.backlog, &server->admin_port_);
    if (!admin_fd.ok()) return admin_fd.status();
    server->admin_listen_fd_ = *admin_fd;
  }

  if (pipe(server->wake_fds_) < 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  if (Status s = SetNonBlocking(server->wake_fds_[0]); !s.ok()) return s;

#ifdef __linux__
  if (!options.use_poll) {
    Result<std::unique_ptr<Poller>> poller = EpollPoller::Create();
    if (!poller.ok()) return poller.status();
    server->poller_ = std::move(*poller);
  }
#endif
  if (server->poller_ == nullptr) {
    server->poller_ = std::make_unique<PollPoller>();
  }
  if (Status s = server->poller_->Add(server->listen_fd_); !s.ok()) return s;
  if (server->admin_listen_fd_ >= 0) {
    if (Status s = server->poller_->Add(server->admin_listen_fd_); !s.ok()) {
      return s;
    }
  }
  if (Status s = server->poller_->Add(server->wake_fds_[0]); !s.ok()) {
    return s;
  }

  obs::SloTracker::Global().EnsureObjective(
      {.name = kSloNetServeLatency,
       .kind = obs::SloObjective::Kind::kLatency,
       .target = 0.99,
       .latency_threshold_seconds = 0.010});
  obs::SloTracker::Global().EnsureObjective(
      {.name = kSloNetLoopSaturation,
       .kind = obs::SloObjective::Kind::kLatency,
       .target = 0.99,
       .latency_threshold_seconds = 0.025});

  // Capacity accounting rides along with the serving stack: the per-scrape
  // refresh (GET /memory, /metrics) and the pending-queue allocator both
  // charge into the process-wide accountant.
  obs::MemoryAccountant::Global().Enable();

  if (options.tail_traces) {
    obs::TailTraceRing::Options ring;
    ring.slowest_capacity = options.tail_slowest;
    ring.window_seconds = options.tail_window_seconds;
    obs::TailTraceRing::Global().Enable(ring);
  }

  server->started_at_ = std::chrono::steady_clock::now();
  server->loop_ = std::thread(&NetServer::Loop, server.get());
  obs::LogInfo("net", "listening on 127.0.0.1:%u (%s backend)",
               unsigned{server->port_},
               options.use_poll ? "poll" : "default");
  if (server->admin_listen_fd_ >= 0) {
    obs::LogInfo("net", "admin plane on http://127.0.0.1:%u",
                 unsigned{server->admin_port_});
  }
  return server;
}

NetServer::~NetServer() {
  Stop();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (admin_listen_fd_ >= 0) close(admin_listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
}

void NetServer::Stop() {
  if (!stop_requested_.exchange(true)) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
  }
  if (loop_.joinable()) loop_.join();
}

bool NetServer::WaitForShutdown(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  return shutdown_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return loop_exited_; });
}

NetServer::Stats NetServer::stats() const {
  Stats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_closed = connections_closed_.load();
  s.connections_rejected = connections_rejected_.load();
  s.frames_decoded = frames_decoded_.load();
  s.frames_rejected = frames_rejected_.load();
  s.requests_served = requests_served_.load();
  s.admission_rejected = admission_rejected_.load();
  s.drain_rejected = drain_rejected_.load();
  s.drain_expired = drain_expired_.load();
  s.faults_injected = faults_injected_.load();
  s.bytes_read = bytes_read_.load();
  s.bytes_written = bytes_written_.load();
  s.admin_connections = admin_connections_.load();
  s.admin_requests = admin_requests_.load();
  return s;
}

// ---------------------------------------------------------------------------
// Event loop.

void NetServer::Loop() {
  std::vector<PollEvent> events;
  while (true) {
    if (stop_requested_.load(std::memory_order_relaxed)) stopping_ = true;
    if (stopping_) {
      // Graceful drain: already-admitted requests keep dispatching until
      // the drain deadline, after which whatever is still queued gets a
      // typed kUnavailable instead of silently vanishing with the loop.
      if (!drain_started_.has_value()) {
        drain_started_ = std::chrono::steady_clock::now();
      }
      if (!pending_.empty() &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        *drain_started_)
                  .count() >= options_.drain_deadline_seconds) {
        FailPendingUnavailable();
      }
      // Exit once every queued response has been flushed (torn writes
      // resume below), so a shutdown ack actually reaches the client
      // before the loop dies.
      bool outstanding = !pending_.empty();
      for (auto& [fd, conn] : conns_) {
        if (conn.out_offset < conn.outbuf.size()) outstanding = true;
      }
      if (!outstanding) break;
    }

    // A tick with queued work or held-back torn writes must not park in
    // the poller.
    bool torn_pending = false;
    for (auto& [fd, conn] : conns_) {
      if (conn.torn && conn.out_offset < conn.outbuf.size()) {
        torn_pending = true;
      }
    }
    const int timeout_ms = (!pending_.empty() || torn_pending) ? 0 : 50;

    events.clear();
    if (Status s = poller_->Wait(timeout_ms, &events); !s.ok()) {
      obs::LogError("net", "poller failed: %s", s.ToString().c_str());
      break;
    }

    // Loop-saturation telemetry: time the busy part of the tick (everything
    // between poller returns), but only for ticks that had actual work —
    // idle 50ms parks must not drown the histogram in zeros.
    WallTimer tick_timer;
    const bool worked = !events.empty() || !pending_.empty() || torn_pending;

    for (const PollEvent& event : events) {
      if (event.fd == listen_fd_) {
        if (event.readable && !stopping_) HandleListener();
        continue;
      }
      if (event.fd == admin_listen_fd_) {
        if (event.readable && !stopping_) HandleAdminListener();
        continue;
      }
      if (event.fd == wake_fds_[0]) {
        char drain[64];
        while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      const auto it = conns_.find(event.fd);
      if (it == conns_.end()) continue;
      Conn* conn = &it->second;
      const uint64_t conn_id = conn->id;
      if (event.broken) {
        CloseConn(conn_id);
        continue;
      }
      if (event.readable) HandleReadable(conn);
      // The read may have closed the connection; re-resolve before writing.
      conn = FindConn(conn_id);
      if (conn != nullptr && event.writable) HandleWritable(conn);
    }

    // Resume torn writes from previous ticks even without a poll event:
    // the tear is ours, not the kernel's, so the socket is likely ready.
    std::vector<uint64_t> torn_ids;
    for (auto& [fd, conn] : conns_) {
      if (conn.torn && conn.out_offset < conn.outbuf.size()) {
        torn_ids.push_back(conn.id);
      }
    }
    for (const uint64_t id : torn_ids) {
      if (Conn* conn = FindConn(id)) {
        conn->torn = false;
        FlushConn(conn);
      }
    }

    DispatchBatch();

    if (worked) {
      ++loop_ticks_;
      RecordLoopTick(tick_timer.ElapsedSeconds());
      // Periodic pull-model refresh so /metrics gauges stay current even
      // when nobody scrapes GET /memory. Every 64 worked ticks keeps the
      // cost (one pass over conns_) off the per-request path.
      if (loop_ticks_ % 64 == 0 && obs::MemoryAccounting()) {
        RefreshMemoryStats();
      }
    }
  }

  // Close everything on the way out.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) ids.push_back(conn.id);
  for (const uint64_t id : ids) CloseConn(id);
  poller_->Remove(listen_fd_);
  if (admin_listen_fd_ >= 0) poller_->Remove(admin_listen_fd_);
  poller_->Remove(wake_fds_[0]);
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    loop_exited_ = true;
  }
  shutdown_cv_.notify_all();
}

void NetServer::RecordLoopTick(double busy_seconds) {
  static obs::Histogram& lag =
      obs::MetricsRegistry::Global().GetHistogram("net/loop_lag_seconds");
  static obs::Gauge& depth =
      obs::MetricsRegistry::Global().GetGauge("net/queue_depth");
  lag.Observe(busy_seconds);
  depth.Set(static_cast<double>(pending_.size()));

  const bool windows_on = obs::WindowRegistry::Global().enabled();
  const bool slos_on = obs::SloTracker::Global().enabled();
  if (!windows_on && !slos_on) return;
  // Dispatch advances the SimClock per request; the tick record reads the
  // same timeline so windowed loop lag and serve latency stay comparable.
  const uint64_t now = obs::SimClock::Global().now();
  if (windows_on) {
    static obs::SlidingWindowHistogram& lag_window =
        obs::WindowRegistry::Global().GetHistogram(
            "net/window/loop_lag_seconds");
    lag_window.Observe(busy_seconds, now);
    static obs::SlidingWindowHistogram& depth_window =
        obs::WindowRegistry::Global().GetHistogram(
            "net/window/queue_depth",
            {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096});
    depth_window.Observe(static_cast<double>(pending_.size()), now);
  }
  if (slos_on) {
    obs::SloTracker::Global().RecordLatency(kSloNetLoopSaturation,
                                            busy_seconds, now);
  }
}

void NetServer::RefreshMemoryStats() {
  static obs::MemCounter& conn_buffers =
      obs::MemoryAccountant::Global().GetCounter("net/conn_buffers");
  static obs::MemCounter& pending_payloads =
      obs::MemoryAccountant::Global().GetCounter("net/pending_payloads");
  uint64_t buffer_bytes = 0;
  for (const auto& [fd, conn] : conns_) {
    buffer_bytes += conn.decoder.ApproxBytes();
    buffer_bytes += obs::StringApproxBytes(conn.outbuf);
    if (conn.http != nullptr) buffer_bytes += conn.http->ApproxBytes();
  }
  conn_buffers.Set(buffer_bytes);
  // The deque's node storage is allocator-charged (net/pending_queue);
  // the frames' payload strings are heap the allocator cannot see.
  uint64_t payload_bytes = 0;
  for (const Pending& pending : pending_) {
    payload_bytes += obs::StringApproxBytes(pending.frame.payload);
  }
  pending_payloads.Set(payload_bytes);
}

void NetServer::HandleListener() {
  static obs::Counter& accepted =
      obs::MetricsRegistry::Global().GetCounter("net/connections_accepted");
  static obs::Counter& rejected =
      obs::MetricsRegistry::Global().GetCounter("net/connections_rejected");
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: back to the poller
    if (conns_.size() >= options_.max_connections) {
      close(fd);
      ++connections_rejected_;
      rejected.Increment();
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    SetNoDelay(fd);
    if (!poller_->Add(fd).ok()) {
      close(fd);
      continue;
    }
    Conn conn;
    conn.id = next_conn_id_++;
    conn.fd = fd;
    fd_of_conn_[conn.id] = fd;
    conns_[fd] = std::move(conn);
    ++connections_accepted_;
    accepted.Increment();
  }
}

void NetServer::HandleAdminListener() {
  static obs::Counter& accepted =
      obs::MetricsRegistry::Global().GetCounter("net/admin/connections");
  while (true) {
    const int fd = accept(admin_listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    // No max_connections check: the operator plane must stay reachable
    // exactly when the serving plane is saturated.
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    SetNoDelay(fd);
    if (!poller_->Add(fd).ok()) {
      close(fd);
      continue;
    }
    Conn conn;
    conn.id = next_conn_id_++;
    conn.fd = fd;
    conn.is_admin = true;
    conn.http = std::make_unique<HttpParser>();
    fd_of_conn_[conn.id] = fd;
    conns_[fd] = std::move(conn);
    ++admin_connections_;
    accepted.Increment();
  }
}

NetServer::Conn* NetServer::FindConn(uint64_t conn_id) {
  const auto id_it = fd_of_conn_.find(conn_id);
  if (id_it == fd_of_conn_.end()) return nullptr;
  const auto it = conns_.find(id_it->second);
  return it == conns_.end() ? nullptr : &it->second;
}

void NetServer::CloseConn(uint64_t conn_id) {
  Conn* conn = FindConn(conn_id);
  if (conn == nullptr) return;
  const int fd = conn->fd;
  poller_->Remove(fd);
  close(fd);
  fd_of_conn_.erase(conn_id);
  conns_.erase(fd);
  ++connections_closed_;
  obs::MetricsRegistry::Global()
      .GetCounter("net/connections_closed")
      .Increment();
}

void NetServer::HandleReadable(Conn* conn) {
  static obs::Counter& slow_reads =
      obs::MetricsRegistry::Global().GetCounter("net/fault/slow_reads");
  char buf[kReadChunk];
  const uint64_t conn_id = conn->id;
  while (true) {
    size_t want = sizeof(buf);
    if (!conn->is_admin &&
        fault::FaultInjector::Global().ShouldInject(fault::kNetSlowRead)) {
      // A pathologically slow peer: deliver one byte this pass. The frame
      // decoder is torn-read tolerant by construction, so this only adds
      // latency.
      want = 1;
      ++faults_injected_;
      slow_reads.Increment();
    }
    const ssize_t n = recv(conn->fd, buf, want, 0);
    if (n > 0) {
      bytes_read_ += static_cast<uint64_t>(n);
      if (conn->is_admin) {
        conn->http->Feed(buf, static_cast<size_t>(n));
        DrainHttp(conn);
      } else {
        conn->decoder.Feed(buf, static_cast<size_t>(n));
        DrainDecoder(conn);
      }
      if (FindConn(conn_id) == nullptr) return;  // parse error closed it
      if (static_cast<size_t>(n) < want) return;  // drained the socket
      if (want == 1) return;  // slow read: one byte per tick
      continue;
    }
    if (n == 0) {  // orderly peer close
      CloseConn(conn_id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn_id);
    return;
  }
}

void NetServer::DrainDecoder(Conn* conn) {
  static obs::Counter& decoded =
      obs::MetricsRegistry::Global().GetCounter("net/frames_decoded");
  static obs::Counter& rejected =
      obs::MetricsRegistry::Global().GetCounter("net/frames_rejected");
  static obs::Counter& admission =
      obs::MetricsRegistry::Global().GetCounter("net/admission_rejected");
  const uint64_t conn_id = conn->id;
  while (true) {
    Frame frame;
    Status error;
    WallTimer decode_timer;
    const FrameDecoder::Poll poll = conn->decoder.Next(&frame, &error);
    if (poll == FrameDecoder::Poll::kNeedMore) return;
    if (poll == FrameDecoder::Poll::kError) {
      // The stream is desynchronized beyond repair: answer with the typed
      // error, then close once it is flushed.
      ++frames_rejected_;
      rejected.Increment();
      obs::LogWarn("net", "conn %llu: %s",
                   static_cast<unsigned long long>(conn_id),
                   error.ToString().c_str());
      QueueError(conn, error, 0);
      conn->close_after_flush = true;
      FlushConn(conn);
      return;
    }
    ++frames_decoded_;
    decoded.Increment();

    switch (frame.type) {
      case MsgType::kServeRequest:
      case MsgType::kAnonymizeRequest:
      case MsgType::kSnapshotAdvance: {
        if (stopping_) {
          // Mid-drain arrivals must not extend the drain: typed reject,
          // same retry hint as admission control.
          static obs::Counter& drain_rejected =
              obs::MetricsRegistry::Global().GetCounter("net/drain_rejected");
          ++drain_rejected_;
          drain_rejected.Increment();
          QueueError(conn,
                     Status::Unavailable("server is draining for shutdown"),
                     options_.retry_after_micros);
          FlushConn(conn);
          break;
        }
        if (pending_.size() >= options_.max_pending) {
          // Admission control: a typed, retryable reject instead of an
          // unbounded queue.
          ++admission_rejected_;
          admission.Increment();
          QueueError(conn,
                     Status::Unavailable("pending-request queue is full"),
                     options_.retry_after_micros);
          FlushConn(conn);
          break;
        }
        Pending pending;
        pending.conn_id = conn_id;
        pending.frame = std::move(frame);
        pending.decode_seconds = decode_timer.ElapsedSeconds();
        pending.enqueued = std::chrono::steady_clock::now();
        pending_.push_back(std::move(pending));
        break;
      }
      case MsgType::kHealthRequest: {
        // Operator plane: answered inline, bypassing admission so health
        // stays observable under overload.
        HealthResponseMsg msg;
        msg.healthy = true;
        msg.queue_depth = static_cast<uint32_t>(pending_.size());
        msg.queue_capacity = static_cast<uint32_t>(options_.max_pending);
        msg.connections = static_cast<uint32_t>(conns_.size());
        QueueResponse(conn, MsgType::kHealthResponse,
                      EncodeHealthResponse(msg));
        FlushConn(conn);
        break;
      }
      case MsgType::kStatsRequest: {
        const CspServer::Stats& cs = csp_->stats();
        StatsResponseMsg msg;
        msg.requests_served = cs.requests_served;
        msg.requests_degraded = cs.requests_degraded;
        msg.requests_failed = cs.requests_failed;
        msg.requests_rejected = cs.requests_rejected;
        msg.snapshots_advanced = cs.snapshots_advanced;
        msg.moves_quarantined = cs.moves_quarantined;
        msg.rebuilds = cs.rebuilds;
        msg.incremental_updates = cs.incremental_updates;
        msg.repair_fallbacks = cs.repair_fallbacks;
        msg.admission_rejected = admission_rejected_.load();
        QueueResponse(conn, MsgType::kStatsResponse,
                      EncodeStatsResponse(msg));
        FlushConn(conn);
        break;
      }
      case MsgType::kShutdownRequest: {
        obs::LogInfo("net", "shutdown requested by conn %llu",
                     static_cast<unsigned long long>(conn_id));
        QueueResponse(conn, MsgType::kShutdownResponse, "");
        conn->close_after_flush = true;
        stopping_ = true;
        FlushConn(conn);
        break;
      }
      default: {
        // A response type arriving at the server is a protocol violation.
        ++frames_rejected_;
        rejected.Increment();
        QueueError(conn,
                   Status::InvalidArgument(
                       "frame type is not a request the server accepts"),
                   0);
        conn->close_after_flush = true;
        FlushConn(conn);
        return;
      }
    }
    if (FindConn(conn_id) == nullptr) return;  // conn_drop during flush
  }
}

// ---------------------------------------------------------------------------
// Admin plane.

namespace {

// Human burn-rate table for GET /slo: one row per objective with both
// alerting windows, mirroring the CLI's end-of-run SLO report.
std::string SloBurnTable() {
  const obs::MetricsSnapshot snapshot = obs::FullSnapshot();
  if (snapshot.slos.empty()) {
    return "no SLO objectives armed (serve with --slo tracking enabled)\n";
  }
  TablePrinter table({"slo", "kind", "target", "fast_burn", "slow_burn",
                      "alerting", "fired", "resolved"});
  for (const obs::SloState& slo : snapshot.slos) {
    char target[32], fast[32], slow[32];
    std::snprintf(target, sizeof(target), "%.4f", slo.target);
    std::snprintf(fast, sizeof(fast), "%.2f", slo.fast_burn);
    std::snprintf(slow, sizeof(slow), "%.2f", slo.slow_burn);
    table.AddRow({slo.name, obs::SloKindName(slo.kind), target, fast, slow,
                  slo.alerting ? "ALERT" : "ok",
                  std::to_string(slo.alerts_fired),
                  std::to_string(slo.alerts_resolved)});
  }
  return table.ToString();
}

}  // namespace

void NetServer::DrainHttp(Conn* conn) {
  const uint64_t conn_id = conn->id;
  while (true) {
    HttpRequest request;
    Status error;
    const HttpParser::Poll poll = conn->http->Next(&request, &error);
    if (poll == HttpParser::Poll::kNeedMore) return;
    if (poll == HttpParser::Poll::kError) {
      const int status =
          conn->http->http_status() > 0 ? conn->http->http_status() : 400;
      obs::LogWarn("net", "admin conn %llu: %s",
                   static_cast<unsigned long long>(conn_id),
                   error.ToString().c_str());
      conn->outbuf += EncodeHttpResponse(status, "text/plain; charset=utf-8",
                                         error.message() + "\n",
                                         /*keep_alive=*/false);
      conn->close_after_flush = true;
      FlushConn(conn);
      return;
    }
    HandleAdminRequest(conn, request);
    if (FindConn(conn_id) == nullptr) return;  // flushed and closed
  }
}

void NetServer::HandleAdminRequest(Conn* conn, const HttpRequest& request) {
  static obs::Counter& admin_served =
      obs::MetricsRegistry::Global().GetCounter("net/admin/requests");
  ++admin_requests_;
  admin_served.Increment();

  const bool head_only = request.method == "HEAD";
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (request.method != "GET" && !head_only) {
    status = 405;
    body = "only GET and HEAD are served here\n";
  } else if (request.path == "/metrics") {
    // The Prometheus scrape target; version 0.0.4 is the text format tag.
    // Scrape-time pull refresh: re-report every subsystem's bytes and
    // publish the pasa_mem_bytes gauges so the scrape sees current numbers.
    if (obs::MemoryAccounting()) {
      RefreshMemoryStats();
      csp_->ReportMemory(obs::MemoryAccountant::Global());
      obs::ReportObsMemory(obs::MemoryAccountant::Global());
      obs::MemoryAccountant::Global().PublishGauges(
          obs::MetricsRegistry::Global());
    }
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = obs::ExportPrometheus(obs::FullSnapshot(), options_.exemplars);
  } else if (request.path == "/healthz") {
    // Body stays "ok "-prefixed (probes grep for it); the fields behind it
    // carry the drain state, uptime and connection split.
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_at_)
            .count();
    char line[224];
    std::snprintf(line, sizeof(line),
                  "ok state=%s uptime_seconds=%.3f queue=%zu/%zu "
                  "connections=%zu admin_connections=%llu\n",
                  stopping_ ? "draining" : "serving", uptime, pending_.size(),
                  options_.max_pending, conns_.size(),
                  static_cast<unsigned long long>(admin_connections_.load()));
    body = line;
  } else if (request.path == "/memory") {
    // Per-subsystem memory accounting, refreshed at scrape time from every
    // long-lived structure (pull model: nothing on the serving hot path).
    content_type = "application/json";
    obs::MemoryAccountant& accountant = obs::MemoryAccountant::Global();
    RefreshMemoryStats();
    csp_->ReportMemory(accountant);
    obs::ReportObsMemory(accountant);
    accountant.PublishGauges(obs::MetricsRegistry::Global());
    body = accountant.ExportJson(csp_->snapshot().size());
  } else if (request.path == "/vars") {
    content_type = "application/json";
    body = obs::ExportJson(obs::FullSnapshot());
  } else if (request.path == "/slo") {
    body = SloBurnTable();
  } else if (request.path == "/trace") {
    // Span trees of the slowest (and all anomalous) requests in the tail
    // ring's sliding window; also consumed by `pasa_cli slowest`.
    content_type = "application/json";
    body = obs::TailTraceRing::Global().ExportJson();
  } else if (request.path == "/profile") {
    // Collapsed-stack folded text over the trailing ?seconds=N of the
    // always-on profiler ring (everything retained when absent); reading
    // back recorded samples, so the event loop never blocks here.
    double seconds = 0.0;
    const auto it = request.query.find("seconds");
    if (it != request.query.end()) seconds = std::atof(it->second.c_str());
    if (!obs::Profiler::Global().armed() &&
        obs::Profiler::Global().samples_taken() == 0) {
      status = 404;
      body = "profiler is not armed (serve with --profile-hz > 0)\n";
    } else {
      body = obs::Profiler::Global().Collapsed(seconds);
    }
  } else {
    status = 404;
    body = "unknown admin path: try /metrics /healthz /slo /vars /trace "
           "/profile /memory\n";
  }

  conn->outbuf += EncodeHttpResponse(status, content_type, body,
                                     request.keep_alive, head_only);
  if (!request.keep_alive) conn->close_after_flush = true;
  FlushConn(conn);
}

// ---------------------------------------------------------------------------
// Dispatch.

void NetServer::DispatchBatch() {
  size_t budget = options_.max_batch;
  while (budget-- > 0 && !pending_.empty()) {
    Pending pending = std::move(pending_.front());
    pending_.pop_front();
    Dispatch(pending);
  }
}

void NetServer::FailPendingUnavailable() {
  static obs::Counter& expired =
      obs::MetricsRegistry::Global().GetCounter("net/drain_expired");
  obs::LogWarn("net", "drain deadline expired with %zu request(s) queued",
               pending_.size());
  while (!pending_.empty()) {
    Pending pending = std::move(pending_.front());
    pending_.pop_front();
    ++drain_expired_;
    expired.Increment();
    Conn* conn = FindConn(pending.conn_id);
    if (conn == nullptr) continue;  // client went away while queued
    QueueError(
        conn,
        Status::Unavailable("server shut down before the request was served"),
        options_.retry_after_micros);
    FlushConn(conn);
  }
}

void NetServer::Dispatch(const Pending& pending) {
  static obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "net/serve_latency_seconds");
  static obs::Counter& served =
      obs::MetricsRegistry::Global().GetCounter("net/requests_served");
  Conn* conn = FindConn(pending.conn_id);
  if (conn == nullptr) return;  // client went away while queued

  const double queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pending.enqueued)
          .count();
  static obs::Histogram& queue_wait =
      obs::MetricsRegistry::Global().GetHistogram("net/queue_wait_seconds");
  queue_wait.Observe(queue_seconds);
  if (obs::WindowRegistry::Global().enabled()) {
    static obs::SlidingWindowHistogram& queue_window =
        obs::WindowRegistry::Global().GetHistogram(
            "net/window/queue_wait_seconds");
    queue_window.Observe(queue_seconds, obs::SimClock::Global().now());
  }

  // Distributed tracing: adopt the frame's wire context when the client
  // sent one, otherwise originate a trace locally while a trace consumer
  // (tail ring or timeline sink) is armed. With neither, the request stays
  // untraced and the extra cost here is two relaxed loads.
  obs::TailTraceRing& tail_ring = obs::TailTraceRing::Global();
  obs::TraceContext ctx;
  if (pending.frame.has_trace) {
    ctx.trace_id = pending.frame.trace_id;
    ctx.span_id = pending.frame.parent_span_id;
    ctx.sampled = pending.frame.trace_sampled;
    ctx.remote = true;
  } else if (tail_ring.enabled() || obs::TraceEventSink::Global().active()) {
    ctx.trace_id = obs::NewTraceId();
    ctx.sampled = true;
  }
  std::optional<obs::ScopedTraceContext> trace_scope;
  obs::SpanCollector collector;
  std::optional<obs::ScopedSpanCollector> collector_scope;
  if (ctx.valid()) {
    trace_scope.emplace(ctx);
    if (tail_ring.enabled()) collector_scope.emplace(&collector);
  }

  // The provenance scope spans decode -> serve -> encode; CspServer's
  // nested scope is inert and annotates this record via
  // CurrentProvenance().
  obs::ScopedProvenanceRecord prov;
  if (obs::ProvenanceRecord* p = prov.get()) {
    p->net_decode_seconds = pending.decode_seconds;
    p->net_queue_seconds = queue_seconds;
    p->trace_id = ctx.trace_id;
  }
  WallTimer serve_timer;

  std::string payload;
  MsgType response_type = MsgType::kError;
  Status failure;
  int64_t rid = 0;
  bool degraded = false;
  double serve_seconds = 0.0;
  double encode_seconds = 0.0;

  {
    // The server-side request span: everything below nests under it (the
    // cloak span in CspServer, the LBS span in the frontend), and its close
    // lands the span tree in `collector` for the tail ring.
    std::optional<obs::ScopedSpan> dispatch_span;
    if (ctx.valid()) {
      dispatch_span.emplace("net/dispatch", obs::ScopedSpan::kRoot);
    }

    switch (pending.frame.type) {
      case MsgType::kServeRequest: {
        Result<ServiceRequest> sr =
            DecodeServiceRequest(pending.frame.payload);
        if (!sr.ok()) {
          failure = sr.status();
          break;
        }
        CspServer::ServeReceipt receipt;
        Result<LbsAnswer> answer = csp_->HandleRequest(*sr, &receipt);
        if (!answer.ok()) {
          failure = answer.status();
          break;
        }
        ServeResponseMsg msg;
        msg.rid = receipt.rid;
        msg.group_size = receipt.group_size;
        msg.degraded = answer->degraded;
        msg.cloak_x1 = receipt.cloak.x1;
        msg.cloak_y1 = receipt.cloak.y1;
        msg.cloak_x2 = receipt.cloak.x2;
        msg.cloak_y2 = receipt.cloak.y2;
        msg.pois = answer->pois;
        rid = receipt.rid;
        degraded = answer->degraded;
        response_type = MsgType::kServeResponse;
        payload = EncodeServeResponse(msg);
        break;
      }
      case MsgType::kAnonymizeRequest: {
        Result<ServiceRequest> sr =
            DecodeServiceRequest(pending.frame.payload);
        if (!sr.ok()) {
          failure = sr.status();
          break;
        }
        uint64_t group_size = 0;
        Result<AnonymizedRequest> ar = csp_->Cloak(*sr, &group_size);
        if (!ar.ok()) {
          failure = ar.status();
          break;
        }
        AnonymizeResponseMsg msg;
        msg.rid = ar->rid;
        msg.group_size = group_size;
        msg.cloak_x1 = ar->cloak.x1;
        msg.cloak_y1 = ar->cloak.y1;
        msg.cloak_x2 = ar->cloak.x2;
        msg.cloak_y2 = ar->cloak.y2;
        rid = ar->rid;
        response_type = MsgType::kAnonymizeResponse;
        payload = EncodeAnonymizeResponse(msg);
        break;
      }
      case MsgType::kSnapshotAdvance: {
        Result<SnapshotAdvanceMsg> msg =
            DecodeSnapshotAdvance(pending.frame.payload);
        if (!msg.ok()) {
          failure = msg.status();
          break;
        }
        Result<SnapshotReport> report = csp_->AdvanceSnapshot(msg->moves);
        if (!report.ok()) {
          failure = report.status();
          break;
        }
        SnapshotReportMsg out;
        out.moves_applied = report->moves_applied;
        out.moves_quarantined = report->moves_quarantined;
        out.rebuilt = report->rebuilt;
        out.repair_fell_back_to_rebuild = report->repair_fell_back_to_rebuild;
        out.dp_rows_repaired = report->dp_rows_repaired;
        out.policy_cost = report->policy_cost;
        response_type = MsgType::kSnapshotReport;
        payload = EncodeSnapshotReport(out);
        break;
      }
      default:
        failure = Status::Internal("unroutable frame type reached dispatch");
        break;
    }

    serve_seconds = serve_timer.ElapsedSeconds();
    WallTimer encode_timer;
    if (failure.ok()) {
      QueueResponse(conn, response_type, payload);
    } else {
      QueueError(conn, failure, 0);
    }
    encode_seconds = encode_timer.ElapsedSeconds();
  }
  if (obs::ProvenanceRecord* p = prov.get()) {
    p->net_encode_seconds = encode_seconds;
  }
  ++requests_served_;
  served.Increment();

  // The latency a remote client experiences: queued + served + encoded
  // (decode happened before enqueue and is carried separately). A traced
  // request also offers itself as its latency bucket's exemplar.
  const double total =
      pending.decode_seconds + queue_seconds + serve_seconds + encode_seconds;
  latency.Observe(total, ctx.trace_id);

  if (ctx.valid() && tail_ring.enabled()) {
    obs::TailTrace trace;
    trace.trace_id = ctx.trace_id;
    trace.rid = rid;
    trace.outcome = "served";
    if (!failure.ok()) {
      const bool client_error = failure.code() == StatusCode::kInvalidArgument ||
                                failure.code() == StatusCode::kNotFound;
      trace.outcome = client_error ? "rejected" : "failed";
    } else if (degraded) {
      trace.outcome = "degraded";
    }
    trace.total_seconds = total;
    trace.spans = std::move(collector.spans);
    tail_ring.Offer(std::move(trace));
  }
  const bool windows_on = obs::WindowRegistry::Global().enabled();
  const bool slos_on = obs::SloTracker::Global().enabled();
  if (windows_on || slos_on) {
    // CspServer already advanced the clock by its own serve time; add only
    // the net-layer overhead so the timeline keeps moving under pure
    // net-layer load too.
    const uint64_t now = obs::SimClock::Global().Advance(
        static_cast<uint64_t>((total - serve_seconds) * 1e6) + 1);
    if (windows_on) {
      static obs::SlidingWindowHistogram& window_latency =
          obs::WindowRegistry::Global().GetHistogram(
              "net/window/serve_latency_seconds");
      window_latency.Observe(total, now);
    }
    if (slos_on) {
      obs::SloTracker::Global().RecordLatency(kSloNetServeLatency, total,
                                              now);
    }
  }

  FlushConn(conn);
}

// ---------------------------------------------------------------------------
// Writing.

void NetServer::QueueResponse(Conn* conn, MsgType type,
                              const std::string& payload) {
  conn->outbuf += EncodeFrame(type, payload);
}

void NetServer::QueueError(Conn* conn, const Status& status,
                           uint64_t retry_after) {
  ErrorMsg msg;
  msg.code = status.code();
  msg.retry_after_micros = retry_after;
  msg.message = status.message();
  QueueResponse(conn, MsgType::kError, EncodeError(msg));
}

void NetServer::FlushConn(Conn* conn) {
  static obs::Counter& torn_writes =
      obs::MetricsRegistry::Global().GetCounter("net/fault/torn_writes");
  static obs::Counter& conn_drops =
      obs::MetricsRegistry::Global().GetCounter("net/fault/conn_drops");
  const uint64_t conn_id = conn->id;

  if (!conn->is_admin && conn->out_offset < conn->outbuf.size() &&
      fault::FaultInjector::Global().ShouldInject(fault::kNetConnDrop)) {
    // The peer vanishes right before its response: correctness must come
    // from the client retrying, never from weakened anonymity.
    ++faults_injected_;
    conn_drops.Increment();
    CloseConn(conn_id);
    return;
  }

  size_t limit = conn->outbuf.size();
  if (!conn->is_admin && limit - conn->out_offset > 1 &&
      fault::FaultInjector::Global().ShouldInject(fault::kNetTornWrite)) {
    // Write only half of what is due; the remainder goes out next tick,
    // exercising every client's torn-frame tolerance.
    ++faults_injected_;
    torn_writes.Increment();
    limit = conn->out_offset + (limit - conn->out_offset) / 2;
    conn->torn = true;
  }

  while (conn->out_offset < limit) {
    const ssize_t n =
        send(conn->fd, conn->outbuf.data() + conn->out_offset,
             limit - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_written_ += static_cast<uint64_t>(n);
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      poller_->SetWriteInterest(conn->fd, true);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn_id);
    return;
  }

  if (conn->out_offset >= conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_offset = 0;
    poller_->SetWriteInterest(conn->fd, false);
    if (conn->close_after_flush) CloseConn(conn_id);
  } else {
    // Torn write: keep write interest so the poller returns promptly.
    poller_->SetWriteInterest(conn->fd, true);
  }
}

void NetServer::HandleWritable(Conn* conn) {
  conn->torn = false;
  FlushConn(conn);
}

}  // namespace net
}  // namespace pasa
