#ifndef PASA_NET_CLIENT_H_
#define PASA_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/wire.h"

namespace pasa {
namespace net {

/// Minimal blocking client for the pasa wire protocol: one TCP connection,
/// TCP_NODELAY, frame-at-a-time send/receive with a poll()-based read
/// timeout. Used by pasa_loadgen, the tests and pasa_cli; not thread-safe
/// (one NetClient per thread).
class NetClient {
 public:
  /// Connects to 127.0.0.1:`port` (the NetServer binds loopback only).
  static Result<NetClient> Connect(uint16_t port,
                                   double timeout_seconds = 5.0);

  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  ~NetClient();

  /// Writes one frame, blocking until it is fully on the wire.
  Status SendFrame(MsgType type, std::string_view payload);

  /// Writes one frame carrying the v2 trace-context extension, so the
  /// server adopts `trace` for its serving spans. A zero trace id sends a
  /// plain frame.
  Status SendFrame(MsgType type, std::string_view payload,
                   const WireTraceContext& trace);

  /// Reads the next complete frame, waiting at most `timeout_seconds`
  /// (DeadlineExceeded on expiry, Unavailable when the peer closed).
  Result<Frame> ReadFrame(double timeout_seconds = 5.0);

  /// SendFrame + ReadFrame.
  Result<Frame> Call(MsgType type, std::string_view payload,
                     double timeout_seconds = 5.0);

  /// Traced SendFrame + ReadFrame.
  Result<Frame> Call(MsgType type, std::string_view payload,
                     const WireTraceContext& trace,
                     double timeout_seconds = 5.0);

  int fd() const { return fd_; }
  void Close();

 private:
  explicit NetClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace pasa

#endif  // PASA_NET_CLIENT_H_
