#ifndef PASA_NET_HTTP_H_
#define PASA_NET_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace pasa {
namespace net {

/// One parsed HTTP/1.x request, as produced by HttpParser. Only what the
/// admin plane needs: method, split target, lower-cased headers, and the
/// keep-alive decision (HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
/// close, Connection overrides either way).
struct HttpRequest {
  std::string method;  ///< as sent, upper-case by convention ("GET")
  std::string target;  ///< raw request target ("/profile?seconds=1")
  std::string path;    ///< target up to '?' ("/profile")
  /// Percent-decoded query parameters ('+' decodes to space). Repeated
  /// keys keep the last value.
  std::map<std::string, std::string> query;
  int minor_version = 1;  ///< HTTP/1.<minor_version>
  /// Header fields with lower-cased names; repeated fields keep the last.
  std::map<std::string, std::string> headers;
  /// Whether the connection should stay open after the response.
  bool keep_alive = true;
};

/// Limits a hostile peer is held to; exceeding them is a parse error.
struct HttpParserLimits {
  /// Request line + headers together (the admin plane serves GETs; 8 KiB
  /// is generous).
  size_t max_head_bytes = 8192;
};

/// Incremental, torn-request-tolerant HTTP/1.x request parser, shaped like
/// net::FrameDecoder: Feed() raw bytes as they arrive (in any fragmentation
/// the kernel produces), then Poll with Next() until it reports kNeedMore.
/// Pipelined requests on one connection parse one at a time.
///
/// Parse errors are terminal for the stream (the byte boundary is lost):
/// after kError every further Next() returns kError again. The suggested
/// HTTP status for the error response is in http_status().
///
/// Requests with a non-empty body are rejected (the admin plane is
/// read-only), as are malformed request lines, non-HTTP/1.x versions and
/// heads larger than the limits allow.
class HttpParser {
 public:
  enum class Poll {
    kNeedMore,  ///< no complete head buffered yet
    kRequest,   ///< one request parsed into *request
    kError,     ///< stream is broken; see *error and http_status()
  };

  explicit HttpParser(HttpParserLimits limits = {}) : limits_(limits) {}

  void Feed(const char* data, size_t size);

  Poll Next(HttpRequest* request, Status* error);

  /// The response status an error deserves: 400 for malformed requests,
  /// 431 for oversized heads, 413 for requests with a body, 505 for
  /// non-1.x versions. 0 while no error occurred.
  int http_status() const { return http_status_; }

  /// Approximate heap bytes of the parse buffer (memory accounting,
  /// obs/mem.h).
  uint64_t ApproxBytes() const {
    return buffer_.capacity() <= 15 ? 0 : buffer_.capacity() + 1;
  }

 private:
  HttpParserLimits limits_;
  std::string buffer_;
  bool broken_ = false;
  int http_status_ = 0;
  Status error_ = Status::Ok();
};

/// Reason phrase for the handful of statuses the admin plane emits
/// ("Internal Server Error" for anything unknown).
const char* HttpStatusText(int status);

/// Serializes a complete HTTP/1.1 response with Content-Length and
/// Connection headers. With `head_only` (a HEAD request) the body is
/// omitted but Content-Length still describes it.
std::string EncodeHttpResponse(int status, std::string_view content_type,
                               std::string_view body, bool keep_alive,
                               bool head_only = false);

/// Percent-decodes `s` ('%41' -> 'A', '+' -> ' '); malformed escapes are
/// kept verbatim.
std::string UrlDecode(std::string_view s);

/// One HTTP exchange as seen by the blocking client helpers.
struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::string body;
};

/// Writes `request_bytes` verbatim to 127.0.0.1:`port` and parses one
/// response (honoring Content-Length; otherwise reads to EOF), waiting at
/// most `timeout_seconds`. The raw-request escape hatch for tests that
/// need to send hostile bytes.
Result<HttpResponse> HttpTransact(uint16_t port,
                                  const std::string& request_bytes,
                                  double timeout_seconds = 5.0);

/// Blocking GET of `target` from the loopback admin endpoint on `port`.
/// Used by pasa_loadgen's end-of-run cross-check and `pasa_cli scrape`.
Result<HttpResponse> HttpGet(uint16_t port, const std::string& target,
                             double timeout_seconds = 5.0);

}  // namespace net
}  // namespace pasa

#endif  // PASA_NET_HTTP_H_
