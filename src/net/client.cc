#include "net/client.h"

#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/timer.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace pasa {
namespace net {

Result<NetClient> NetClient::Connect(uint16_t port, double timeout_seconds) {
  WallTimer timer;
  while (true) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return NetClient(fd);
    }
    close(fd);
    // Retry-connect loop so a client racing server startup just waits.
    if (timer.ElapsedSeconds() >= timeout_seconds) {
      return Status::Unavailable(std::string("connect to 127.0.0.1:") +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    }
    struct timespec nap = {0, 2 * 1000 * 1000};  // 2ms
    nanosleep(&nap, nullptr);
  }
}

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)) {}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

namespace {

Status WriteAll(int fd, const std::string& frame) {
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n = send(fd, frame.data() + written,
                           frame.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

Status NetClient::SendFrame(MsgType type, std::string_view payload) {
  if (fd_ < 0) return Status::Unavailable("client is closed");
  return WriteAll(fd_, EncodeFrame(type, payload));
}

Status NetClient::SendFrame(MsgType type, std::string_view payload,
                            const WireTraceContext& trace) {
  if (fd_ < 0) return Status::Unavailable("client is closed");
  return WriteAll(fd_, EncodeFrame(type, payload, trace));
}

Result<Frame> NetClient::ReadFrame(double timeout_seconds) {
  if (fd_ < 0) return Status::Unavailable("client is closed");
  WallTimer timer;
  char buf[64 * 1024];
  while (true) {
    Frame frame;
    Status error;
    switch (decoder_.Next(&frame, &error)) {
      case FrameDecoder::Poll::kFrame:
        return frame;
      case FrameDecoder::Poll::kError:
        return error;
      case FrameDecoder::Poll::kNeedMore:
        break;
    }
    const double left = timeout_seconds - timer.ElapsedSeconds();
    if (left <= 0.0) {
      return Status::DeadlineExceeded("timed out waiting for a frame");
    }
    pollfd p{fd_, POLLIN, 0};
    const int ready = poll(&p, 1, static_cast<int>(left * 1000) + 1);
    if (ready < 0 && errno != EINTR) {
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (ready <= 0) continue;
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by server");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

Result<Frame> NetClient::Call(MsgType type, std::string_view payload,
                              double timeout_seconds) {
  if (Status s = SendFrame(type, payload); !s.ok()) return s;
  return ReadFrame(timeout_seconds);
}

Result<Frame> NetClient::Call(MsgType type, std::string_view payload,
                              const WireTraceContext& trace,
                              double timeout_seconds) {
  if (Status s = SendFrame(type, payload, trace); !s.ok()) return s;
  return ReadFrame(timeout_seconds);
}

}  // namespace net
}  // namespace pasa
