#include "attack/pre.h"

#include <algorithm>

namespace pasa {

CandidateSets SingletonFamilyCandidates(const CloakingTable& policy,
                                        const std::vector<Rect>& observed) {
  CandidateSets sets(observed.size());
  for (size_t a = 0; a < observed.size(); ++a) {
    for (size_t row = 0; row < policy.size(); ++row) {
      if (policy.cloak(row) == observed[a]) sets[a].push_back(row);
    }
  }
  return sets;
}

CandidateSets MaskingFamilyCandidates(const LocationDatabase& db,
                                      const std::vector<Rect>& observed) {
  CandidateSets sets(observed.size());
  for (size_t a = 0; a < observed.size(); ++a) {
    for (size_t row = 0; row < db.size(); ++row) {
      if (observed[a].Contains(db.row(row).location)) sets[a].push_back(row);
    }
  }
  return sets;
}

namespace {

// Backtracking over complete PREs: build the next PRE observation by
// observation (respecting injectivity when `functional`, and per-observation
// distinctness from all previously chosen PREs), then recurse for the rest.
bool Search(const CandidateSets& candidates, int k, bool functional,
            std::vector<std::vector<size_t>>* chosen, size_t max_row) {
  if (chosen->size() == static_cast<size_t>(k)) return true;
  std::vector<size_t> partial;
  std::vector<bool> used_rows(max_row + 1, false);
  auto gen = [&](auto&& self, size_t obs) -> bool {
    if (obs == candidates.size()) {
      chosen->push_back(partial);
      if (Search(candidates, k, functional, chosen, max_row)) return true;
      chosen->pop_back();
      return false;
    }
    for (const size_t row : candidates[obs]) {
      if (functional && used_rows[row]) continue;
      bool clashes = false;
      for (const std::vector<size_t>& pre : *chosen) {
        if (pre[obs] == row) {
          clashes = true;
          break;
        }
      }
      if (clashes) continue;
      partial.push_back(row);
      if (functional) used_rows[row] = true;
      if (self(self, obs + 1)) return true;
      if (functional) used_rows[row] = false;
      partial.pop_back();
    }
    return false;
  };
  return gen(gen, 0);
}

}  // namespace

bool HasKDistinctPres(const CandidateSets& candidates, int k,
                      bool functional) {
  if (k < 1) return true;
  if (candidates.empty()) return true;
  size_t max_row = 0;
  for (const auto& set : candidates) {
    if (set.empty()) return false;  // some observation has no PRE at all
    max_row = std::max(max_row, *std::max_element(set.begin(), set.end()));
  }
  std::vector<std::vector<size_t>> chosen;
  return Search(candidates, k, functional, &chosen, max_row);
}

}  // namespace pasa
