#ifndef PASA_ATTACK_AUDITOR_H_
#define PASA_ATTACK_AUDITOR_H_

#include <cstddef>
#include <vector>

#include "geo/circle.h"
#include "model/cloaking.h"
#include "model/location_database.h"

namespace pasa {

/// Outcome of auditing a bulk cloaking against one attacker class: for each
/// user's (hypothetical) request, how many possible senders the attacker is
/// left with after reverse-engineering.
struct AuditReport {
  /// Smallest possible-sender set over all requests (0 for an empty policy).
  size_t min_possible_senders = 0;
  /// Number of requests whose possible-sender set the attacker reduced
  /// below k (filled by Breaches()).
  std::vector<size_t> possible_senders_per_row;

  /// True if the cloaking provides sender k-anonymity against the audited
  /// attacker class.
  bool Anonymous(int k) const {
    return min_possible_senders >= static_cast<size_t>(k);
  }
  /// Rows whose sender the attacker pins down to fewer than k candidates.
  std::vector<size_t> Breaches(int k) const;
};

/// Policy-aware attacker (knows the exact policy, Section III): the possible
/// senders of a request are exactly the users the policy maps to the same
/// cloak, so the audit computes cloaking-group sizes.
AuditReport AuditPolicyAware(const CloakingTable& table);

/// Circular-cloak variant of the policy-aware audit.
AuditReport AuditPolicyAware(const std::vector<Circle>& cloaks);

/// Policy-unaware attacker (knows only the cloak family): any user inside
/// the observed cloak could have produced it under *some* masking policy,
/// so the audit counts snapshot locations inside each cloak. A cloaking
/// passes at level k iff it is k-inside (Proposition 2).
AuditReport AuditPolicyUnaware(const CloakingTable& table,
                               const LocationDatabase& db);

/// Circular-cloak variant of the policy-unaware audit.
AuditReport AuditPolicyUnaware(const std::vector<Circle>& cloaks,
                               const LocationDatabase& db);

}  // namespace pasa

#endif  // PASA_ATTACK_AUDITOR_H_
