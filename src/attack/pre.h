#ifndef PASA_ATTACK_PRE_H_
#define PASA_ATTACK_PRE_H_

#include <cstddef>
#include <vector>

#include "model/cloaking.h"
#include "model/location_database.h"

namespace pasa {

/// For each observed anonymized request, the snapshot rows that are possible
/// senders (valid Possible-Reverse-Engineering targets, Definition 5).
using CandidateSets = std::vector<std::vector<size_t>>;

/// Candidates under the SINGLETON family {P} (the policy-aware attacker):
/// row r is a candidate for an observation with cloak R iff P maps r to
/// exactly R. `observed` are the cloaks of the observed requests.
CandidateSets SingletonFamilyCandidates(const CloakingTable& policy,
                                        const std::vector<Rect>& observed);

/// Candidates under the family P_C of ALL masking policies over rectangular
/// cloaks (the policy-unaware attacker): every row located inside the
/// observed cloak qualifies.
CandidateSets MaskingFamilyCandidates(const LocationDatabase& db,
                                      const std::vector<Rect>& observed);

/// Brute-force Definition 6 check: do there exist k PREs pi_1..pi_k of the
/// observed request set such that for every observation the k reverse-
/// engineered senders are pairwise distinct? When `functional` is set, each
/// individual PRE must additionally be injective (a deterministic policy
/// cannot map one service request to two different anonymized requests).
/// Exponential search — intended for the tiny instances of the property
/// tests, where it independently validates the group-size characterization
/// used by the auditors.
bool HasKDistinctPres(const CandidateSets& candidates, int k, bool functional);

}  // namespace pasa

#endif  // PASA_ATTACK_PRE_H_
