#include "attack/auditor.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"

namespace pasa {
namespace {

AuditReport FromCounts(std::vector<size_t> counts) {
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("audit/audits_run").Increment();
    registry.GetCounter("audit/rows_audited").Increment(counts.size());
  }
  AuditReport report;
  report.possible_senders_per_row = std::move(counts);
  report.min_possible_senders =
      report.possible_senders_per_row.empty()
          ? 0
          : *std::min_element(report.possible_senders_per_row.begin(),
                              report.possible_senders_per_row.end());
  return report;
}

template <typename Cloak>
AuditReport GroupAudit(const std::vector<Cloak>& cloaks) {
  std::unordered_map<std::string, size_t> group_size;
  for (const Cloak& c : cloaks) ++group_size[c.ToString()];
  std::vector<size_t> counts;
  counts.reserve(cloaks.size());
  for (const Cloak& c : cloaks) counts.push_back(group_size[c.ToString()]);
  return FromCounts(std::move(counts));
}

template <typename Cloak>
AuditReport InsideAudit(const std::vector<Cloak>& cloaks,
                        const LocationDatabase& db) {
  std::vector<size_t> counts;
  counts.reserve(cloaks.size());
  for (const Cloak& c : cloaks) {
    size_t inside = 0;
    for (size_t r = 0; r < db.size(); ++r) {
      if (c.Contains(db.row(r).location)) ++inside;
    }
    counts.push_back(inside);
  }
  return FromCounts(std::move(counts));
}

std::vector<Rect> RectsOf(const CloakingTable& table) {
  std::vector<Rect> rects;
  rects.reserve(table.size());
  for (size_t i = 0; i < table.size(); ++i) rects.push_back(table.cloak(i));
  return rects;
}

}  // namespace

std::vector<size_t> AuditReport::Breaches(int k) const {
  std::vector<size_t> rows;
  for (size_t i = 0; i < possible_senders_per_row.size(); ++i) {
    if (possible_senders_per_row[i] < static_cast<size_t>(k)) {
      rows.push_back(i);
    }
  }
  // Counts breaches per reporting call (Breaches may be invoked more than
  // once on one report; each call represents one auditor decision).
  obs::MetricsRegistry::Global().GetCounter("audit/breaches_found")
      .Increment(rows.size());
  return rows;
}

AuditReport AuditPolicyAware(const CloakingTable& table) {
  obs::MetricsRegistry::Global().GetCounter("audit/policy_aware_audits")
      .Increment();
  return GroupAudit(RectsOf(table));
}

AuditReport AuditPolicyAware(const std::vector<Circle>& cloaks) {
  obs::MetricsRegistry::Global().GetCounter("audit/policy_aware_audits")
      .Increment();
  return GroupAudit(cloaks);
}

AuditReport AuditPolicyUnaware(const CloakingTable& table,
                               const LocationDatabase& db) {
  obs::MetricsRegistry::Global().GetCounter("audit/policy_unaware_audits")
      .Increment();
  return InsideAudit(RectsOf(table), db);
}

AuditReport AuditPolicyUnaware(const std::vector<Circle>& cloaks,
                               const LocationDatabase& db) {
  obs::MetricsRegistry::Global().GetCounter("audit/policy_unaware_audits")
      .Increment();
  return InsideAudit(cloaks, db);
}

}  // namespace pasa
