#ifndef PASA_OBS_WINDOW_H_
#define PASA_OBS_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pasa {
namespace obs {

/// The simulated-microsecond clock the windowed telemetry slides over.
///
/// The serving stack has no real network: wall time covers only in-process
/// work, while provider latency enters through the fault injector's
/// simulated-microsecond payloads. The windows need one monotonic timeline
/// covering both, so the serving path advances this clock by its measured
/// wall latency and the resilient LBS client additionally advances it by
/// the simulated micros a request consumed (injected latency + backoff).
/// Reads and advances are single relaxed atomics, safe from any thread.
class SimClock {
 public:
  /// The process-wide clock every window and SLO evaluation reads.
  static SimClock& Global();

  uint64_t now() const { return micros_.load(std::memory_order_relaxed); }

  /// Moves the clock forward and returns the new time.
  uint64_t Advance(uint64_t micros) {
    return micros_.fetch_add(micros, std::memory_order_relaxed) + micros;
  }

  /// Rewinds to zero (tests and benches; never the serving path).
  void Reset() { micros_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> micros_{0};
};

/// Default span of a sliding window: the last 10 simulated seconds.
inline constexpr uint64_t kDefaultWindowMicros = 10'000'000;

/// How many time slices a window is divided into. Expiry granularity is one
/// slice, so a window covers between (kWindowSlices - 1) and kWindowSlices
/// slices' worth of events.
inline constexpr size_t kWindowSlices = 16;

/// A fixed-bucket histogram over a sliding time window: observations are
/// binned into rotating time slices, and a snapshot merges only the slices
/// that still fall inside the window, so p50/p95/p99 reflect recent traffic
/// instead of the whole process lifetime (what the cumulative
/// obs::Histogram reports).
///
/// Thread-safe behind a mutex; the serving path only reaches it when the
/// WindowRegistry is enabled, so the disarmed cost is the caller's one
/// relaxed load of that switch.
class SlidingWindowHistogram {
 public:
  struct Stats {
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// `upper_bounds` empty means the registry default (latency buckets).
  SlidingWindowHistogram(std::vector<double> upper_bounds,
                         uint64_t window_micros);

  void Observe(double value, uint64_t now_micros);

  /// Merged stats over the slices still inside the window at `now_micros`.
  /// Quantiles interpolate linearly inside the winning bucket; the +Inf
  /// bucket reports the largest finite bound.
  Stats Snapshot(uint64_t now_micros) const;

  uint64_t window_micros() const { return window_micros_; }
  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Discards every recorded slice.
  void Reset();

 private:
  struct Slice {
    uint64_t index = UINT64_MAX;  ///< slice_micros-sized epoch; UINT64_MAX=empty
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
  };

  mutable std::mutex mu_;
  std::vector<double> bounds_;  ///< sorted ascending
  uint64_t window_micros_;
  uint64_t slice_micros_;
  std::vector<Slice> slices_;
};

/// A good/total event rate over a sliding time window (cache hit rate,
/// availability, degradation rate). Same slice machinery and locking as
/// SlidingWindowHistogram.
class SlidingWindowRate {
 public:
  struct Stats {
    uint64_t good = 0;
    uint64_t total = 0;
    /// good / total; 0 when the window saw no events.
    double rate = 0.0;
  };

  explicit SlidingWindowRate(uint64_t window_micros);

  void Record(bool good, uint64_t now_micros);
  Stats Snapshot(uint64_t now_micros) const;

  uint64_t window_micros() const { return window_micros_; }
  void Reset();

 private:
  struct Slice {
    uint64_t index = UINT64_MAX;
    uint64_t good = 0;
    uint64_t total = 0;
  };

  mutable std::mutex mu_;
  uint64_t window_micros_;
  uint64_t slice_micros_;
  std::vector<Slice> slices_;
};

/// Immutable copy of every registered window, for the exporters.
struct WindowSnapshot {
  struct HistogramData {
    uint64_t window_micros = 0;
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  struct RateData {
    uint64_t window_micros = 0;
    uint64_t good = 0;
    uint64_t total = 0;
    double rate = 0.0;
  };
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, RateData> rates;
};

/// Named registry of sliding windows, the windowed sibling of
/// MetricsRegistry. Disabled by default: serving-path call sites guard on
/// enabled() (one relaxed load) so un-armed runs never touch a window
/// mutex. Get* is get-or-create; returned references stay valid for the
/// registry's lifetime, so hot paths cache them like metrics:
///
///   if (obs::WindowRegistry::Global().enabled()) {
///     static obs::SlidingWindowRate& hits = obs::WindowRegistry::Global()
///         .GetRate("lbs/window/cache_hit_rate");
///     hits.Record(hit, obs::SimClock::Global().now());
///   }
class WindowRegistry {
 public:
  WindowRegistry() = default;
  WindowRegistry(const WindowRegistry&) = delete;
  WindowRegistry& operator=(const WindowRegistry&) = delete;

  /// The process-wide registry (armed by `pasa_cli serve` / `--audit-out`).
  static WindowRegistry& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// `upper_bounds` empty means DefaultLatencyBuckets(); like
  /// MetricsRegistry::GetHistogram, both arguments are ignored for an
  /// already-registered name.
  SlidingWindowHistogram& GetHistogram(
      const std::string& name, std::vector<double> upper_bounds = {},
      uint64_t window_micros = kDefaultWindowMicros);
  SlidingWindowRate& GetRate(const std::string& name,
                             uint64_t window_micros = kDefaultWindowMicros);

  WindowSnapshot Snapshot(uint64_t now_micros) const;

  /// Discards all recorded events; registrations and references survive.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, std::unique_ptr<SlidingWindowHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<SlidingWindowRate>> rates_;
};

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_WINDOW_H_
