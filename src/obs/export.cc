#include "obs/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "common/table.h"
#include "obs/provenance.h"
#include "obs/tail_trace.h"
#include "obs/trace_context.h"
#include "obs/trace_sink.h"

namespace pasa {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  std::string s = buf;
  // JSON has no inf/nan literals; clamp to null-free safe strings.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& path) {
  std::string out = "pasa_";
  for (const char c : path) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

// Escapes a # HELP docstring: only backslash and newline are special there.
std::string PromHelpEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Splits a registry key (see obs::LabeledName) at its first '{' into the
// family path and the verbatim label block ("" when unlabeled).
void SplitSeriesKey(const std::string& key, std::string* path,
                    std::string* labels) {
  const size_t brace = key.find('{');
  if (brace == std::string::npos) {
    *path = key;
    labels->clear();
  } else {
    *path = key.substr(0, brace);
    *labels = key.substr(brace);
  }
}

// Inserts an extra `k="v"` pair into a (possibly empty) label block.
std::string MergeLabels(const std::string& block, const std::string& extra) {
  if (block.empty()) return "{" + extra + "}";
  return block.substr(0, block.size() - 1) + "," + extra + "}";
}

// Emits the one # HELP + # TYPE header a metric family gets.
void FamilyHeader(std::string* out, const std::string& prom, const char* type,
                  const std::string& help) {
  AppendF(out, "# HELP %s %s\n", prom.c_str(), PromHelpEscape(help).c_str());
  AppendF(out, "# TYPE %s %s\n", prom.c_str(), type);
}

// Regroups snapshot map entries by family path so every series of a family
// (labeled or not) is emitted contiguously under a single header, as the
// exposition format requires — the snapshot map interleaves families
// lexically ("foo2" sorts between "foo" and "foo{shard=...}").
template <typename Value>
std::map<std::string, std::vector<std::pair<std::string, const Value*>>>
GroupFamilies(const std::map<std::string, Value>& series) {
  std::map<std::string, std::vector<std::pair<std::string, const Value*>>>
      families;
  for (const auto& [key, value] : series) {
    std::string path;
    std::string labels;
    SplitSeriesKey(key, &path, &labels);
    families[path].emplace_back(std::move(labels), &value);
  }
  return families;
}

// Approximate quantile from cumulative bucket counts: the upper bound of the
// first bucket whose cumulative count reaches q * total.
double ApproxQuantile(const MetricsSnapshot::HistogramData& h, double q) {
  if (h.count == 0) return 0.0;
  const double target = q * static_cast<double>(h.count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
    cumulative += h.bucket_counts[i];
    if (static_cast<double>(cumulative) >= target) {
      return i < h.upper_bounds.size() ? h.upper_bounds[i]
                                       : h.upper_bounds.back();
    }
  }
  return h.upper_bounds.empty() ? 0.0 : h.upper_bounds.back();
}

}  // namespace

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    AppendF(&out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
            JsonEscape(name).c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    AppendF(&out, "%s\n    \"%s\": %s", first ? "" : ",",
            JsonEscape(name).c_str(), JsonNumber(value).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    AppendF(&out, "%s\n    \"%s\": {\n      \"count\": %" PRIu64
                  ",\n      \"sum\": %s,\n      \"buckets\": [",
            first ? "" : ",", JsonEscape(name).c_str(), h.count,
            JsonNumber(h.sum).c_str());
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      if (i < h.upper_bounds.size()) {
        AppendF(&out, "{\"le\": %s, \"count\": %" PRIu64 "}",
                JsonNumber(h.upper_bounds[i]).c_str(), h.bucket_counts[i]);
      } else {
        AppendF(&out, "{\"le\": \"+Inf\", \"count\": %" PRIu64 "}",
                h.bucket_counts[i]);
      }
    }
    out += "]\n    }";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  const bool have_windows = !snapshot.windows.histograms.empty() ||
                            !snapshot.windows.rates.empty();
  const bool have_slos = !snapshot.slos.empty();

  out += "  \"spans\": {";
  first = true;
  for (const auto& [name, s] : snapshot.spans) {
    AppendF(&out, "%s\n    \"%s\": {\"count\": %" PRIu64
                  ", \"total_seconds\": %s, \"min_seconds\": %s, "
                  "\"max_seconds\": %s}",
            first ? "" : ",", JsonEscape(name).c_str(), s.count,
            JsonNumber(s.total_seconds).c_str(),
            JsonNumber(s.min_seconds).c_str(),
            JsonNumber(s.max_seconds).c_str());
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += (have_windows || have_slos) ? ",\n" : "\n";

  if (have_windows) {
    out += "  \"windows\": {\n    \"histograms\": {";
    first = true;
    for (const auto& [name, w] : snapshot.windows.histograms) {
      AppendF(&out,
              "%s\n      \"%s\": {\"window_micros\": %" PRIu64
              ", \"count\": %" PRIu64
              ", \"sum\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}",
              first ? "" : ",", JsonEscape(name).c_str(), w.window_micros,
              w.count, JsonNumber(w.sum).c_str(), JsonNumber(w.p50).c_str(),
              JsonNumber(w.p95).c_str(), JsonNumber(w.p99).c_str());
      first = false;
    }
    out += first ? "},\n    \"rates\": {" : "\n    },\n    \"rates\": {";
    first = true;
    for (const auto& [name, r] : snapshot.windows.rates) {
      AppendF(&out,
              "%s\n      \"%s\": {\"window_micros\": %" PRIu64
              ", \"good\": %" PRIu64 ", \"total\": %" PRIu64 ", \"rate\": %s}",
              first ? "" : ",", JsonEscape(name).c_str(), r.window_micros,
              r.good, r.total, JsonNumber(r.rate).c_str());
      first = false;
    }
    out += first ? "}\n  }" : "\n    }\n  }";
    out += have_slos ? ",\n" : "\n";
  }

  if (have_slos) {
    out += "  \"slos\": [";
    first = true;
    for (const auto& slo : snapshot.slos) {
      AppendF(&out,
              "%s\n    {\"name\": \"%s\", \"kind\": \"%s\", \"target\": %s, "
              "\"alerting\": %s, \"fast_burn\": %s, \"slow_burn\": %s, "
              "\"fast_good\": %" PRIu64 ", \"fast_total\": %" PRIu64
              ", \"slow_good\": %" PRIu64 ", \"slow_total\": %" PRIu64
              ", \"alerts_fired\": %" PRIu64 ", \"alerts_resolved\": %" PRIu64
              "}",
              first ? "" : ",", JsonEscape(slo.name).c_str(),
              SloKindName(slo.kind), JsonNumber(slo.target).c_str(),
              slo.alerting ? "true" : "false",
              JsonNumber(slo.fast_burn).c_str(),
              JsonNumber(slo.slow_burn).c_str(), slo.fast_good,
              slo.fast_total, slo.slow_good, slo.slow_total, slo.alerts_fired,
              slo.alerts_resolved);
      first = false;
    }
    out += first ? "]\n" : "\n  ]\n";
  }
  out += "}\n";
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot,
                             bool include_exemplars) {
  std::string out;
  for (const auto& [path, series] : GroupFamilies(snapshot.counters)) {
    const std::string prom = PromName(path);
    FamilyHeader(&out, prom, "counter", "pasa counter " + path);
    for (const auto& [labels, value] : series) {
      AppendF(&out, "%s%s %" PRIu64 "\n", prom.c_str(), labels.c_str(),
              *value);
    }
  }
  for (const auto& [path, series] : GroupFamilies(snapshot.gauges)) {
    const std::string prom = PromName(path);
    FamilyHeader(&out, prom, "gauge", "pasa gauge " + path);
    for (const auto& [labels, value] : series) {
      AppendF(&out, "%s%s %s\n", prom.c_str(), labels.c_str(),
              JsonNumber(*value).c_str());
    }
  }
  for (const auto& [path, series] : GroupFamilies(snapshot.histograms)) {
    const std::string prom = PromName(path);
    FamilyHeader(&out, prom, "histogram", "pasa histogram " + path);
    for (const auto& [labels, h] : series) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h->bucket_counts.size(); ++i) {
        cumulative += h->bucket_counts[i];
        const std::string le =
            i < h->upper_bounds.size()
                ? "le=\"" + JsonNumber(h->upper_bounds[i]) + "\""
                : std::string("le=\"+Inf\"");
        AppendF(&out, "%s_bucket%s %" PRIu64, prom.c_str(),
                MergeLabels(labels, le).c_str(), cumulative);
        if (include_exemplars && i < h->exemplar_trace_ids.size() &&
            h->exemplar_trace_ids[i] != 0) {
          AppendF(&out, " # {trace_id=\"%s\"} %s",
                  TraceIdHex(h->exemplar_trace_ids[i]).c_str(),
                  JsonNumber(h->exemplar_values[i]).c_str());
        }
        out += '\n';
      }
      AppendF(&out, "%s_sum%s %s\n", prom.c_str(), labels.c_str(),
              JsonNumber(h->sum).c_str());
      AppendF(&out, "%s_count%s %" PRIu64 "\n", prom.c_str(), labels.c_str(),
              h->count);
    }
  }
  if (!snapshot.spans.empty()) {
    FamilyHeader(&out, "pasa_span_seconds_total", "counter",
                 "total seconds spent in each instrumented span path");
    for (const auto& [name, s] : snapshot.spans) {
      AppendF(&out, "pasa_span_seconds_total{span=\"%s\"} %s\n",
              PromLabelValueEscape(name).c_str(),
              JsonNumber(s.total_seconds).c_str());
    }
    FamilyHeader(&out, "pasa_span_count", "counter",
                 "completed executions of each instrumented span path");
    for (const auto& [name, s] : snapshot.spans) {
      AppendF(&out, "pasa_span_count{span=\"%s\"} %" PRIu64 "\n",
              PromLabelValueEscape(name).c_str(), s.count);
    }
  }
  {
    const auto window_families = GroupFamilies(snapshot.windows.histograms);
    // Each windowed histogram fans out into four synthetic gauge families
    // (_p50/_p95/_p99/_window_count); keep each family's series contiguous.
    for (const char* suffix : {"_p50", "_p95", "_p99", "_window_count"}) {
      for (const auto& [path, series] : window_families) {
        const std::string prom = PromName(path) + suffix;
        FamilyHeader(&out, prom, "gauge",
                     "pasa sliding-window statistic " + path + suffix);
        for (const auto& [labels, w] : series) {
          if (std::string(suffix) == "_window_count") {
            AppendF(&out, "%s%s %" PRIu64 "\n", prom.c_str(), labels.c_str(),
                    w->count);
          } else {
            const double q = std::string(suffix) == "_p50"   ? w->p50
                             : std::string(suffix) == "_p95" ? w->p95
                                                             : w->p99;
            AppendF(&out, "%s%s %s\n", prom.c_str(), labels.c_str(),
                    JsonNumber(q).c_str());
          }
        }
      }
    }
  }
  for (const auto& [path, series] : GroupFamilies(snapshot.windows.rates)) {
    const std::string prom = PromName(path);
    FamilyHeader(&out, prom, "gauge", "pasa sliding-window rate " + path);
    for (const auto& [labels, r] : series) {
      AppendF(&out, "%s%s %s\n", prom.c_str(), labels.c_str(),
              JsonNumber(r->rate).c_str());
    }
    FamilyHeader(&out, prom + "_window_total", "gauge",
                 "pasa sliding-window sample count " + path);
    for (const auto& [labels, r] : series) {
      AppendF(&out, "%s_window_total%s %" PRIu64 "\n", prom.c_str(),
              labels.c_str(), r->total);
    }
  }
  if (!snapshot.slos.empty()) {
    FamilyHeader(&out, "pasa_slo_alerting", "gauge",
                 "1 while the SLO's multi-window burn-rate alert is firing");
    for (const auto& slo : snapshot.slos) {
      AppendF(&out, "pasa_slo_alerting{slo=\"%s\"} %d\n",
              PromLabelValueEscape(slo.name).c_str(), slo.alerting ? 1 : 0);
    }
    FamilyHeader(&out, "pasa_slo_fast_burn", "gauge",
                 "error budget burn rate over the fast window");
    for (const auto& slo : snapshot.slos) {
      AppendF(&out, "pasa_slo_fast_burn{slo=\"%s\"} %s\n",
              PromLabelValueEscape(slo.name).c_str(),
              JsonNumber(slo.fast_burn).c_str());
    }
    FamilyHeader(&out, "pasa_slo_slow_burn", "gauge",
                 "error budget burn rate over the slow window");
    for (const auto& slo : snapshot.slos) {
      AppendF(&out, "pasa_slo_slow_burn{slo=\"%s\"} %s\n",
              PromLabelValueEscape(slo.name).c_str(),
              JsonNumber(slo.slow_burn).c_str());
    }
    // The same burn rates and window contents with explicit window labels,
    // the series shape external multi-window alerting rules consume. The
    // unlabeled pasa_slo_fast_burn/pasa_slo_slow_burn series above stay for
    // dashboard compatibility.
    FamilyHeader(&out, "pasa_slo_burn_rate", "gauge",
                 "error budget burn rate per alerting window");
    for (const auto& slo : snapshot.slos) {
      const std::string name = PromLabelValueEscape(slo.name);
      AppendF(&out, "pasa_slo_burn_rate{slo=\"%s\",window=\"fast\"} %s\n",
              name.c_str(), JsonNumber(slo.fast_burn).c_str());
      AppendF(&out, "pasa_slo_burn_rate{slo=\"%s\",window=\"slow\"} %s\n",
              name.c_str(), JsonNumber(slo.slow_burn).c_str());
    }
    FamilyHeader(&out, "pasa_slo_window_good", "gauge",
                 "good events per alerting window");
    for (const auto& slo : snapshot.slos) {
      const std::string name = PromLabelValueEscape(slo.name);
      AppendF(&out, "pasa_slo_window_good{slo=\"%s\",window=\"fast\"} %" PRIu64
                    "\n",
              name.c_str(), slo.fast_good);
      AppendF(&out, "pasa_slo_window_good{slo=\"%s\",window=\"slow\"} %" PRIu64
                    "\n",
              name.c_str(), slo.slow_good);
    }
    FamilyHeader(&out, "pasa_slo_window_total", "gauge",
                 "total events per alerting window");
    for (const auto& slo : snapshot.slos) {
      const std::string name = PromLabelValueEscape(slo.name);
      AppendF(&out,
              "pasa_slo_window_total{slo=\"%s\",window=\"fast\"} %" PRIu64
              "\n",
              name.c_str(), slo.fast_total);
      AppendF(&out,
              "pasa_slo_window_total{slo=\"%s\",window=\"slow\"} %" PRIu64
              "\n",
              name.c_str(), slo.slow_total);
    }
  }
  return out;
}

namespace {

bool IsMetricNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || (c >= '0' && c <= '9');
}
bool IsLabelNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || (c >= '0' && c <= '9');
}

Status LineError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("prometheus text line " +
                                 std::to_string(line_no) + ": " + what);
}

// Parses a `{k="v",...}` label block starting at the '{' at *pos; advances
// *pos past the closing brace. Returns false (with *error set) on malformed
// label names, quoting or escapes. `name` is only used in error messages.
bool ParseLabelBlock(const std::string& line, size_t line_no, size_t* pos,
                     const std::string& name, Status* error) {
  size_t i = *pos;
  ++i;  // opening brace
  while (i < line.size() && line[i] != '}') {
    if (!IsLabelNameStart(line[i])) {
      *error = LineError(line_no, "bad label name in " + name);
      return false;
    }
    while (i < line.size() && IsLabelNameChar(line[i])) ++i;
    if (i >= line.size() || line[i] != '=') {
      *error = LineError(line_no, "label without '=' in " + name);
      return false;
    }
    ++i;
    if (i >= line.size() || line[i] != '"') {
      *error = LineError(line_no, "label value not quoted in " + name);
      return false;
    }
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        if (i + 1 >= line.size() ||
            (line[i + 1] != '\\' && line[i + 1] != '"' &&
             line[i + 1] != 'n')) {
          *error = LineError(line_no, "bad escape in label value of " + name);
          return false;
        }
        ++i;
      }
      ++i;
    }
    if (i >= line.size()) {
      *error = LineError(line_no, "unterminated label value in " + name);
      return false;
    }
    ++i;  // closing quote
    if (i < line.size() && line[i] == ',') ++i;
  }
  if (i >= line.size()) {
    *error = LineError(line_no, "unterminated label block in " + name);
    return false;
  }
  ++i;  // closing brace
  *pos = i;
  return true;
}

// Parses `name{labels}` starting at *pos; advances *pos past it. Returns
// false (with *error set) on malformed names, labels or escapes.
bool ParseSampleName(const std::string& line, size_t line_no, size_t* pos,
                     std::string* name, Status* error) {
  size_t i = *pos;
  if (i >= line.size() || !IsMetricNameStart(line[i])) {
    *error = LineError(line_no, "sample does not start with a metric name");
    return false;
  }
  const size_t name_begin = i;
  while (i < line.size() && IsMetricNameChar(line[i])) ++i;
  *name = line.substr(name_begin, i - name_begin);
  if (i < line.size() && line[i] == '{') {
    if (!ParseLabelBlock(line, line_no, &i, *name, error)) return false;
  }
  *pos = i;
  return true;
}

}  // namespace

Status CheckPrometheusText(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("prometheus text is empty");
  if (text.back() != '\n') {
    return Status::InvalidArgument(
        "prometheus text does not end with a newline");
  }
  std::map<std::string, std::string> declared_type;
  // Grouping check: once another family's samples start, a family is closed
  // and must not reappear.
  std::string current_family;
  std::set<std::string> closed;
  // Maps a sample name to its family: histogram series land under the base
  // name their # TYPE declared.
  const auto family_of = [&declared_type](const std::string& name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t len = std::string(suffix).size();
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        const std::string base = name.substr(0, name.size() - len);
        const auto it = declared_type.find(base);
        if (it != declared_type.end() && it->second == "histogram") {
          return base;
        }
      }
    }
    return name;
  };

  size_t line_no = 0;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE name type" / "# HELP name docstring"; other comments pass.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t space = rest.find(' ');
        const std::string name = rest.substr(0, space);
        if (name.empty() || !IsMetricNameStart(name[0])) {
          return LineError(line_no, "TYPE without a metric name");
        }
        const std::string type =
            space == std::string::npos ? "" : rest.substr(space + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return LineError(line_no, "unknown TYPE '" + type + "'");
        }
        if (declared_type.count(name) != 0) {
          return LineError(line_no, "duplicate TYPE for " + name);
        }
        if (closed.count(name) != 0 || current_family == name) {
          return LineError(line_no, "TYPE for " + name + " after its samples");
        }
        declared_type[name] = type;
      } else if (line.rfind("# HELP ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t space = rest.find(' ');
        const std::string name = rest.substr(0, space);
        if (name.empty() || !IsMetricNameStart(name[0])) {
          return LineError(line_no, "HELP without a metric name");
        }
      }
      continue;
    }
    std::string name;
    size_t pos = 0;
    Status error = Status::Ok();
    if (!ParseSampleName(line, line_no, &pos, &name, &error)) return error;
    if (pos >= line.size() || (line[pos] != ' ' && line[pos] != '\t')) {
      return LineError(line_no, "no value after sample name " + name);
    }
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    // Value, then an optional integer timestamp.
    const size_t value_end = line.find_first_of(" \t", pos);
    const std::string value = line.substr(
        pos, value_end == std::string::npos ? std::string::npos
                                            : value_end - pos);
    char* parse_end = nullptr;
    std::strtod(value.c_str(), &parse_end);
    if (value.empty() || parse_end != value.c_str() + value.size()) {
      return LineError(line_no, "unparseable value '" + value + "'");
    }
    // Remainder after the value: either an (ignored) integer timestamp or
    // an OpenMetrics exemplar suffix `# {label="v",...} value`, which is
    // only legal on histogram _bucket samples.
    size_t rest = value_end == std::string::npos ? line.size() : value_end;
    while (rest < line.size() && (line[rest] == ' ' || line[rest] == '\t')) {
      ++rest;
    }
    if (rest < line.size() && line[rest] == '#') {
      const std::string kBucket = "_bucket";
      if (name.size() <= kBucket.size() ||
          name.compare(name.size() - kBucket.size(), kBucket.size(),
                       kBucket) != 0) {
        return LineError(line_no,
                         "exemplar on non-_bucket sample " + name);
      }
      ++rest;
      while (rest < line.size() && line[rest] == ' ') ++rest;
      if (rest >= line.size() || line[rest] != '{') {
        return LineError(line_no, "exemplar without a label block on " + name);
      }
      Status ex_error = Status::Ok();
      if (!ParseLabelBlock(line, line_no, &rest, name + " exemplar",
                           &ex_error)) {
        return ex_error;
      }
      while (rest < line.size() && (line[rest] == ' ' || line[rest] == '\t')) {
        ++rest;
      }
      const std::string ex_value = line.substr(rest);
      char* ex_end = nullptr;
      std::strtod(ex_value.c_str(), &ex_end);
      if (ex_value.empty() || ex_end != ex_value.c_str() + ex_value.size()) {
        return LineError(line_no, "unparseable exemplar value '" + ex_value +
                                      "' on " + name);
      }
    }
    const std::string family = family_of(name);
    if (family != current_family) {
      if (closed.count(family) != 0) {
        return LineError(line_no,
                         "samples for " + family + " are not contiguous");
      }
      if (!current_family.empty()) closed.insert(current_family);
      current_family = family;
    }
  }
  return Status::Ok();
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Status::InvalidArgument("cannot create directory " +
                                     parent.string() + ": " + ec.message());
    }
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open output file " + path);
  }
  file << content;
  file.close();
  if (!file) return Status::Internal("failed writing file " + path);
  return Status::Ok();
}

namespace {

/// Folds the armed global window registry / SLO tracker into `snapshot`,
/// evaluated at the SimClock's current simulated time.
void Augment(MetricsSnapshot* snapshot) {
  const uint64_t now = SimClock::Global().now();
  if (WindowRegistry::Global().enabled()) {
    snapshot->windows = WindowRegistry::Global().Snapshot(now);
  }
  if (SloTracker::Global().enabled()) {
    snapshot->slos = SloTracker::Global().Evaluate(now);
  }
  // Surface timeline-event loss: once the span-sampling ring has been armed
  // (or has ever overflowed), /vars and /metrics report how many events the
  // fixed-capacity TraceEventSink ring could not hold.
  const TraceEventSink& sink = TraceEventSink::Global();
  if (sink.active() || sink.dropped() > 0) {
    snapshot->counters["obs/trace_dropped_events"] = sink.dropped();
  }
  // Same treatment for the other bounded rings: overwrites and drops are
  // silent at the ring, so surface them wherever metrics are exported.
  const ProvenanceRing& provenance = ProvenanceRing::Global();
  if (provenance.enabled() || provenance.overwritten() > 0) {
    snapshot->counters["obs/provenance_overwritten"] =
        provenance.overwritten();
  }
  const TailTraceRing& tail = TailTraceRing::Global();
  if (tail.enabled() || tail.anomalies_dropped() > 0) {
    snapshot->counters["obs/tail_trace_dropped"] = tail.anomalies_dropped();
  }
}

}  // namespace

MetricsSnapshot FullSnapshot() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  Augment(&snapshot);
  return snapshot;
}

Status WriteJsonFile(const MetricsRegistry& registry,
                     const std::string& path) {
  MetricsSnapshot snapshot = registry.Snapshot();
  if (&registry == &MetricsRegistry::Global()) Augment(&snapshot);
  return WriteTextFile(path, ExportJson(snapshot));
}

std::string SummaryTable(const MetricsSnapshot& snapshot) {
  TablePrinter table({"metric", "kind", "value"});
  for (const auto& [name, s] : snapshot.spans) {
    char value[128];
    std::snprintf(value, sizeof(value), "%.3f s over %" PRIu64 " call(s)",
                  s.total_seconds, s.count);
    table.AddRow({name, "span", value});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    char value[160];
    std::snprintf(value, sizeof(value),
                  "n=%" PRIu64 " mean=%.1f us p50<=%.1f us p99<=%.1f us",
                  h.count,
                  h.count ? h.sum / static_cast<double>(h.count) * 1e6 : 0.0,
                  ApproxQuantile(h, 0.50) * 1e6, ApproxQuantile(h, 0.99) * 1e6);
    table.AddRow({name, "histogram", value});
  }
  for (const auto& [name, value] : snapshot.counters) {
    table.AddRow({name, "counter", std::to_string(value)});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    table.AddRow({name, "gauge", buf});
  }
  for (const auto& [name, w] : snapshot.windows.histograms) {
    char value[160];
    std::snprintf(value, sizeof(value),
                  "n=%" PRIu64 " p50=%.1f us p95=%.1f us p99=%.1f us",
                  w.count, w.p50 * 1e6, w.p95 * 1e6, w.p99 * 1e6);
    table.AddRow({name, "window", value});
  }
  for (const auto& [name, r] : snapshot.windows.rates) {
    char value[128];
    std::snprintf(value, sizeof(value), "rate=%.4f (%" PRIu64 "/%" PRIu64 ")",
                  r.rate, r.good, r.total);
    table.AddRow({name, "window", value});
  }
  for (const auto& slo : snapshot.slos) {
    char value[160];
    std::snprintf(value, sizeof(value),
                  "%s fast_burn=%.2f slow_burn=%.2f fired=%" PRIu64,
                  slo.alerting ? "ALERT" : "ok", slo.fast_burn, slo.slow_burn,
                  slo.alerts_fired);
    table.AddRow({slo.name, "slo", value});
  }
  return table.ToString();
}

}  // namespace obs
}  // namespace pasa
