#include "obs/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/table.h"

namespace pasa {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  std::string s = buf;
  // JSON has no inf/nan literals; clamp to null-free safe strings.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& path) {
  std::string out = "pasa_";
  for (const char c : path) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

// Approximate quantile from cumulative bucket counts: the upper bound of the
// first bucket whose cumulative count reaches q * total.
double ApproxQuantile(const MetricsSnapshot::HistogramData& h, double q) {
  if (h.count == 0) return 0.0;
  const double target = q * static_cast<double>(h.count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
    cumulative += h.bucket_counts[i];
    if (static_cast<double>(cumulative) >= target) {
      return i < h.upper_bounds.size() ? h.upper_bounds[i]
                                       : h.upper_bounds.back();
    }
  }
  return h.upper_bounds.empty() ? 0.0 : h.upper_bounds.back();
}

}  // namespace

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    AppendF(&out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
            JsonEscape(name).c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    AppendF(&out, "%s\n    \"%s\": %s", first ? "" : ",",
            JsonEscape(name).c_str(), JsonNumber(value).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    AppendF(&out, "%s\n    \"%s\": {\n      \"count\": %" PRIu64
                  ",\n      \"sum\": %s,\n      \"buckets\": [",
            first ? "" : ",", JsonEscape(name).c_str(), h.count,
            JsonNumber(h.sum).c_str());
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      if (i < h.upper_bounds.size()) {
        AppendF(&out, "{\"le\": %s, \"count\": %" PRIu64 "}",
                JsonNumber(h.upper_bounds[i]).c_str(), h.bucket_counts[i]);
      } else {
        AppendF(&out, "{\"le\": \"+Inf\", \"count\": %" PRIu64 "}",
                h.bucket_counts[i]);
      }
    }
    out += "]\n    }";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"spans\": {";
  first = true;
  for (const auto& [name, s] : snapshot.spans) {
    AppendF(&out, "%s\n    \"%s\": {\"count\": %" PRIu64
                  ", \"total_seconds\": %s, \"min_seconds\": %s, "
                  "\"max_seconds\": %s}",
            first ? "" : ",", JsonEscape(name).c_str(), s.count,
            JsonNumber(s.total_seconds).c_str(),
            JsonNumber(s.min_seconds).c_str(),
            JsonNumber(s.max_seconds).c_str());
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PromName(name);
    AppendF(&out, "# TYPE %s counter\n", prom.c_str());
    AppendF(&out, "%s %" PRIu64 "\n", prom.c_str(), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    AppendF(&out, "# TYPE %s gauge\n", prom.c_str());
    AppendF(&out, "%s %s\n", prom.c_str(), JsonNumber(value).c_str());
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PromName(name);
    AppendF(&out, "# TYPE %s histogram\n", prom.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      if (i < h.upper_bounds.size()) {
        AppendF(&out, "%s_bucket{le=\"%s\"} %" PRIu64 "\n", prom.c_str(),
                JsonNumber(h.upper_bounds[i]).c_str(), cumulative);
      } else {
        AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", prom.c_str(),
                cumulative);
      }
    }
    AppendF(&out, "%s_sum %s\n", prom.c_str(), JsonNumber(h.sum).c_str());
    AppendF(&out, "%s_count %" PRIu64 "\n", prom.c_str(), h.count);
  }
  if (!snapshot.spans.empty()) {
    out += "# TYPE pasa_span_seconds_total counter\n";
    for (const auto& [name, s] : snapshot.spans) {
      AppendF(&out, "pasa_span_seconds_total{span=\"%s\"} %s\n", name.c_str(),
              JsonNumber(s.total_seconds).c_str());
    }
    out += "# TYPE pasa_span_count counter\n";
    for (const auto& [name, s] : snapshot.spans) {
      AppendF(&out, "pasa_span_count{span=\"%s\"} %" PRIu64 "\n", name.c_str(),
              s.count);
    }
  }
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Status::InvalidArgument("cannot create directory " +
                                     parent.string() + ": " + ec.message());
    }
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open output file " + path);
  }
  file << content;
  file.close();
  if (!file) return Status::Internal("failed writing file " + path);
  return Status::Ok();
}

Status WriteJsonFile(const MetricsRegistry& registry,
                     const std::string& path) {
  return WriteTextFile(path, ExportJson(registry.Snapshot()));
}

std::string SummaryTable(const MetricsSnapshot& snapshot) {
  TablePrinter table({"metric", "kind", "value"});
  for (const auto& [name, s] : snapshot.spans) {
    char value[128];
    std::snprintf(value, sizeof(value), "%.3f s over %" PRIu64 " call(s)",
                  s.total_seconds, s.count);
    table.AddRow({name, "span", value});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    char value[160];
    std::snprintf(value, sizeof(value),
                  "n=%" PRIu64 " mean=%.1f us p50<=%.1f us p99<=%.1f us",
                  h.count,
                  h.count ? h.sum / static_cast<double>(h.count) * 1e6 : 0.0,
                  ApproxQuantile(h, 0.50) * 1e6, ApproxQuantile(h, 0.99) * 1e6);
    table.AddRow({name, "histogram", value});
  }
  for (const auto& [name, value] : snapshot.counters) {
    table.AddRow({name, "counter", std::to_string(value)});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    table.AddRow({name, "gauge", buf});
  }
  return table.ToString();
}

}  // namespace obs
}  // namespace pasa
