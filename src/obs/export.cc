#include "obs/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/table.h"

namespace pasa {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  std::string s = buf;
  // JSON has no inf/nan literals; clamp to null-free safe strings.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& path) {
  std::string out = "pasa_";
  for (const char c : path) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

// Approximate quantile from cumulative bucket counts: the upper bound of the
// first bucket whose cumulative count reaches q * total.
double ApproxQuantile(const MetricsSnapshot::HistogramData& h, double q) {
  if (h.count == 0) return 0.0;
  const double target = q * static_cast<double>(h.count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
    cumulative += h.bucket_counts[i];
    if (static_cast<double>(cumulative) >= target) {
      return i < h.upper_bounds.size() ? h.upper_bounds[i]
                                       : h.upper_bounds.back();
    }
  }
  return h.upper_bounds.empty() ? 0.0 : h.upper_bounds.back();
}

}  // namespace

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    AppendF(&out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
            JsonEscape(name).c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    AppendF(&out, "%s\n    \"%s\": %s", first ? "" : ",",
            JsonEscape(name).c_str(), JsonNumber(value).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    AppendF(&out, "%s\n    \"%s\": {\n      \"count\": %" PRIu64
                  ",\n      \"sum\": %s,\n      \"buckets\": [",
            first ? "" : ",", JsonEscape(name).c_str(), h.count,
            JsonNumber(h.sum).c_str());
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      if (i < h.upper_bounds.size()) {
        AppendF(&out, "{\"le\": %s, \"count\": %" PRIu64 "}",
                JsonNumber(h.upper_bounds[i]).c_str(), h.bucket_counts[i]);
      } else {
        AppendF(&out, "{\"le\": \"+Inf\", \"count\": %" PRIu64 "}",
                h.bucket_counts[i]);
      }
    }
    out += "]\n    }";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  const bool have_windows = !snapshot.windows.histograms.empty() ||
                            !snapshot.windows.rates.empty();
  const bool have_slos = !snapshot.slos.empty();

  out += "  \"spans\": {";
  first = true;
  for (const auto& [name, s] : snapshot.spans) {
    AppendF(&out, "%s\n    \"%s\": {\"count\": %" PRIu64
                  ", \"total_seconds\": %s, \"min_seconds\": %s, "
                  "\"max_seconds\": %s}",
            first ? "" : ",", JsonEscape(name).c_str(), s.count,
            JsonNumber(s.total_seconds).c_str(),
            JsonNumber(s.min_seconds).c_str(),
            JsonNumber(s.max_seconds).c_str());
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += (have_windows || have_slos) ? ",\n" : "\n";

  if (have_windows) {
    out += "  \"windows\": {\n    \"histograms\": {";
    first = true;
    for (const auto& [name, w] : snapshot.windows.histograms) {
      AppendF(&out,
              "%s\n      \"%s\": {\"window_micros\": %" PRIu64
              ", \"count\": %" PRIu64
              ", \"sum\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}",
              first ? "" : ",", JsonEscape(name).c_str(), w.window_micros,
              w.count, JsonNumber(w.sum).c_str(), JsonNumber(w.p50).c_str(),
              JsonNumber(w.p95).c_str(), JsonNumber(w.p99).c_str());
      first = false;
    }
    out += first ? "},\n    \"rates\": {" : "\n    },\n    \"rates\": {";
    first = true;
    for (const auto& [name, r] : snapshot.windows.rates) {
      AppendF(&out,
              "%s\n      \"%s\": {\"window_micros\": %" PRIu64
              ", \"good\": %" PRIu64 ", \"total\": %" PRIu64 ", \"rate\": %s}",
              first ? "" : ",", JsonEscape(name).c_str(), r.window_micros,
              r.good, r.total, JsonNumber(r.rate).c_str());
      first = false;
    }
    out += first ? "}\n  }" : "\n    }\n  }";
    out += have_slos ? ",\n" : "\n";
  }

  if (have_slos) {
    out += "  \"slos\": [";
    first = true;
    for (const auto& slo : snapshot.slos) {
      AppendF(&out,
              "%s\n    {\"name\": \"%s\", \"kind\": \"%s\", \"target\": %s, "
              "\"alerting\": %s, \"fast_burn\": %s, \"slow_burn\": %s, "
              "\"fast_good\": %" PRIu64 ", \"fast_total\": %" PRIu64
              ", \"slow_good\": %" PRIu64 ", \"slow_total\": %" PRIu64
              ", \"alerts_fired\": %" PRIu64 ", \"alerts_resolved\": %" PRIu64
              "}",
              first ? "" : ",", JsonEscape(slo.name).c_str(),
              SloKindName(slo.kind), JsonNumber(slo.target).c_str(),
              slo.alerting ? "true" : "false",
              JsonNumber(slo.fast_burn).c_str(),
              JsonNumber(slo.slow_burn).c_str(), slo.fast_good,
              slo.fast_total, slo.slow_good, slo.slow_total, slo.alerts_fired,
              slo.alerts_resolved);
      first = false;
    }
    out += first ? "]\n" : "\n  ]\n";
  }
  out += "}\n";
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PromName(name);
    AppendF(&out, "# TYPE %s counter\n", prom.c_str());
    AppendF(&out, "%s %" PRIu64 "\n", prom.c_str(), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    AppendF(&out, "# TYPE %s gauge\n", prom.c_str());
    AppendF(&out, "%s %s\n", prom.c_str(), JsonNumber(value).c_str());
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PromName(name);
    AppendF(&out, "# TYPE %s histogram\n", prom.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      if (i < h.upper_bounds.size()) {
        AppendF(&out, "%s_bucket{le=\"%s\"} %" PRIu64 "\n", prom.c_str(),
                JsonNumber(h.upper_bounds[i]).c_str(), cumulative);
      } else {
        AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", prom.c_str(),
                cumulative);
      }
    }
    AppendF(&out, "%s_sum %s\n", prom.c_str(), JsonNumber(h.sum).c_str());
    AppendF(&out, "%s_count %" PRIu64 "\n", prom.c_str(), h.count);
  }
  if (!snapshot.spans.empty()) {
    out += "# TYPE pasa_span_seconds_total counter\n";
    for (const auto& [name, s] : snapshot.spans) {
      AppendF(&out, "pasa_span_seconds_total{span=\"%s\"} %s\n", name.c_str(),
              JsonNumber(s.total_seconds).c_str());
    }
    out += "# TYPE pasa_span_count counter\n";
    for (const auto& [name, s] : snapshot.spans) {
      AppendF(&out, "pasa_span_count{span=\"%s\"} %" PRIu64 "\n", name.c_str(),
              s.count);
    }
  }
  for (const auto& [name, w] : snapshot.windows.histograms) {
    const std::string prom = PromName(name);
    AppendF(&out, "# TYPE %s_p50 gauge\n%s_p50 %s\n", prom.c_str(),
            prom.c_str(), JsonNumber(w.p50).c_str());
    AppendF(&out, "# TYPE %s_p95 gauge\n%s_p95 %s\n", prom.c_str(),
            prom.c_str(), JsonNumber(w.p95).c_str());
    AppendF(&out, "# TYPE %s_p99 gauge\n%s_p99 %s\n", prom.c_str(),
            prom.c_str(), JsonNumber(w.p99).c_str());
    AppendF(&out, "# TYPE %s_window_count gauge\n%s_window_count %" PRIu64
                  "\n",
            prom.c_str(), prom.c_str(), w.count);
  }
  for (const auto& [name, r] : snapshot.windows.rates) {
    const std::string prom = PromName(name);
    AppendF(&out, "# TYPE %s gauge\n%s %s\n", prom.c_str(), prom.c_str(),
            JsonNumber(r.rate).c_str());
    AppendF(&out, "# TYPE %s_window_total gauge\n%s_window_total %" PRIu64
                  "\n",
            prom.c_str(), prom.c_str(), r.total);
  }
  if (!snapshot.slos.empty()) {
    out += "# TYPE pasa_slo_alerting gauge\n";
    for (const auto& slo : snapshot.slos) {
      AppendF(&out, "pasa_slo_alerting{slo=\"%s\"} %d\n", slo.name.c_str(),
              slo.alerting ? 1 : 0);
    }
    out += "# TYPE pasa_slo_fast_burn gauge\n";
    for (const auto& slo : snapshot.slos) {
      AppendF(&out, "pasa_slo_fast_burn{slo=\"%s\"} %s\n", slo.name.c_str(),
              JsonNumber(slo.fast_burn).c_str());
    }
    out += "# TYPE pasa_slo_slow_burn gauge\n";
    for (const auto& slo : snapshot.slos) {
      AppendF(&out, "pasa_slo_slow_burn{slo=\"%s\"} %s\n", slo.name.c_str(),
              JsonNumber(slo.slow_burn).c_str());
    }
    // The same burn rates and window contents with explicit window labels,
    // the series shape external multi-window alerting rules consume. The
    // unlabeled pasa_slo_fast_burn/pasa_slo_slow_burn series above stay for
    // dashboard compatibility.
    out += "# TYPE pasa_slo_burn_rate gauge\n";
    for (const auto& slo : snapshot.slos) {
      AppendF(&out, "pasa_slo_burn_rate{slo=\"%s\",window=\"fast\"} %s\n",
              slo.name.c_str(), JsonNumber(slo.fast_burn).c_str());
      AppendF(&out, "pasa_slo_burn_rate{slo=\"%s\",window=\"slow\"} %s\n",
              slo.name.c_str(), JsonNumber(slo.slow_burn).c_str());
    }
    out += "# TYPE pasa_slo_window_good gauge\n";
    for (const auto& slo : snapshot.slos) {
      AppendF(&out, "pasa_slo_window_good{slo=\"%s\",window=\"fast\"} %" PRIu64
                    "\n",
              slo.name.c_str(), slo.fast_good);
      AppendF(&out, "pasa_slo_window_good{slo=\"%s\",window=\"slow\"} %" PRIu64
                    "\n",
              slo.name.c_str(), slo.slow_good);
    }
    out += "# TYPE pasa_slo_window_total gauge\n";
    for (const auto& slo : snapshot.slos) {
      AppendF(&out,
              "pasa_slo_window_total{slo=\"%s\",window=\"fast\"} %" PRIu64
              "\n",
              slo.name.c_str(), slo.fast_total);
      AppendF(&out,
              "pasa_slo_window_total{slo=\"%s\",window=\"slow\"} %" PRIu64
              "\n",
              slo.name.c_str(), slo.slow_total);
    }
  }
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Status::InvalidArgument("cannot create directory " +
                                     parent.string() + ": " + ec.message());
    }
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open output file " + path);
  }
  file << content;
  file.close();
  if (!file) return Status::Internal("failed writing file " + path);
  return Status::Ok();
}

namespace {

/// Folds the armed global window registry / SLO tracker into `snapshot`,
/// evaluated at the SimClock's current simulated time.
void Augment(MetricsSnapshot* snapshot) {
  const uint64_t now = SimClock::Global().now();
  if (WindowRegistry::Global().enabled()) {
    snapshot->windows = WindowRegistry::Global().Snapshot(now);
  }
  if (SloTracker::Global().enabled()) {
    snapshot->slos = SloTracker::Global().Evaluate(now);
  }
}

}  // namespace

MetricsSnapshot FullSnapshot() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  Augment(&snapshot);
  return snapshot;
}

Status WriteJsonFile(const MetricsRegistry& registry,
                     const std::string& path) {
  MetricsSnapshot snapshot = registry.Snapshot();
  if (&registry == &MetricsRegistry::Global()) Augment(&snapshot);
  return WriteTextFile(path, ExportJson(snapshot));
}

std::string SummaryTable(const MetricsSnapshot& snapshot) {
  TablePrinter table({"metric", "kind", "value"});
  for (const auto& [name, s] : snapshot.spans) {
    char value[128];
    std::snprintf(value, sizeof(value), "%.3f s over %" PRIu64 " call(s)",
                  s.total_seconds, s.count);
    table.AddRow({name, "span", value});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    char value[160];
    std::snprintf(value, sizeof(value),
                  "n=%" PRIu64 " mean=%.1f us p50<=%.1f us p99<=%.1f us",
                  h.count,
                  h.count ? h.sum / static_cast<double>(h.count) * 1e6 : 0.0,
                  ApproxQuantile(h, 0.50) * 1e6, ApproxQuantile(h, 0.99) * 1e6);
    table.AddRow({name, "histogram", value});
  }
  for (const auto& [name, value] : snapshot.counters) {
    table.AddRow({name, "counter", std::to_string(value)});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    table.AddRow({name, "gauge", buf});
  }
  for (const auto& [name, w] : snapshot.windows.histograms) {
    char value[160];
    std::snprintf(value, sizeof(value),
                  "n=%" PRIu64 " p50=%.1f us p95=%.1f us p99=%.1f us",
                  w.count, w.p50 * 1e6, w.p95 * 1e6, w.p99 * 1e6);
    table.AddRow({name, "window", value});
  }
  for (const auto& [name, r] : snapshot.windows.rates) {
    char value[128];
    std::snprintf(value, sizeof(value), "rate=%.4f (%" PRIu64 "/%" PRIu64 ")",
                  r.rate, r.good, r.total);
    table.AddRow({name, "window", value});
  }
  for (const auto& slo : snapshot.slos) {
    char value[160];
    std::snprintf(value, sizeof(value),
                  "%s fast_burn=%.2f slow_burn=%.2f fired=%" PRIu64,
                  slo.alerting ? "ALERT" : "ok", slo.fast_burn, slo.slow_burn,
                  slo.alerts_fired);
    table.AddRow({slo.name, "slo", value});
  }
  return table.ToString();
}

}  // namespace obs
}  // namespace pasa
