#ifndef PASA_OBS_TAIL_TRACE_H_
#define PASA_OBS_TAIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace_context.h"

namespace pasa {
namespace obs {

/// The complete span tree of one finished request, as kept by the
/// TailTraceRing for after-the-fact inspection of outliers.
struct TailTrace {
  uint64_t trace_id = 0;
  int64_t rid = 0;
  std::string outcome;  ///< served | degraded | failed | rejected
  double total_seconds = 0.0;
  /// Wall-clock (system_clock) micros at completion; stamped by Offer when
  /// left 0. Drives the sliding-window eviction.
  uint64_t completed_wall_micros = 0;
  std::vector<CollectedSpan> spans;
};

/// Always-on tail-trace capture: a fixed-capacity store of the N slowest
/// requests inside a sliding wall-clock window, plus a bounded ring of
/// every anomalous (non-served) request. Fed by the serving path on every
/// request, served at GET /trace on the admin plane and by
/// `pasa_cli slowest`.
///
/// The disarmed check (`enabled()`) is a single relaxed atomic load; the
/// armed path takes a mutex, which is fine on the single-threaded serving
/// loop and still cheap elsewhere.
class TailTraceRing {
 public:
  struct Options {
    size_t slowest_capacity = 8;  ///< N slowest kept per window
    size_t anomaly_capacity = 32;
    double window_seconds = 60.0;
  };

  static TailTraceRing& Global();

  TailTraceRing() = default;
  TailTraceRing(const TailTraceRing&) = delete;
  TailTraceRing& operator=(const TailTraceRing&) = delete;

  void Enable(const Options& options);
  void Enable() { Enable(Options()); }
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Offers one finished request. Kept if it is among the window's slowest
  /// or is anomalous (outcome != "served"); otherwise discarded. No-op when
  /// disabled.
  void Offer(TailTrace trace);

  /// {"window_seconds":…, "slowest":[…], "anomalies":[…]} — slowest first.
  /// Each trace carries its hex trace id and full span tree.
  std::string ExportJson() const;

  size_t slowest_size() const;
  size_t anomaly_size() const;

  /// Anomalous traces overwritten because the bounded anomaly ring was
  /// full — the tail-trace sibling of obs/trace_dropped_events, exported
  /// as the obs/tail_trace_dropped counter so silent ring saturation is
  /// visible on /metrics.
  uint64_t anomalies_dropped() const {
    return anomalies_dropped_.load(std::memory_order_relaxed);
  }

  /// Approximate heap bytes held by the retained traces (span trees
  /// included) — memory accounting, obs/mem.h.
  uint64_t ApproxBytes() const;

  void Reset();

 private:
  void EvictExpiredLocked(uint64_t now_micros);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> anomalies_dropped_{0};
  mutable std::mutex mu_;
  Options options_;
  std::vector<TailTrace> slowest_;   ///< sorted, slowest first
  std::deque<TailTrace> anomalies_;  ///< newest last
};

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_TAIL_TRACE_H_
