#include "obs/trace_sink.h"

#include <cinttypes>
#include <cstdio>

#include "obs/export.h"

namespace pasa {
namespace obs {
namespace {

// Sink-assigned id of the calling thread; 0 = not yet assigned.
thread_local uint32_t tls_trace_tid = 0;

const char* PhaseOf(TraceEvent::Type type) {
  switch (type) {
    case TraceEvent::Type::kBegin:
      return "B";
    case TraceEvent::Type::kEnd:
      return "E";
    case TraceEvent::Type::kInstant:
      return "i";
    case TraceEvent::Type::kCounter:
      return "C";
  }
  return "i";
}

}  // namespace

TraceEventSink& TraceEventSink::Global() {
  static TraceEventSink* sink = new TraceEventSink();
  return *sink;
}

uint32_t TraceEventSink::CurrentThreadId() {
  if (tls_trace_tid == 0) {
    tls_trace_tid = next_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return tls_trace_tid;
}

void TraceEventSink::Start(size_t capacity) {
  active_.store(false, std::memory_order_relaxed);
  if (capacity == 0) capacity = 1;
  // vector<Slot> cannot be resized in place (atomics are immovable), so
  // rebuild; Start is documented as quiescent-only.
  std::vector<Slot> fresh(capacity);
  slots_.swap(fresh);
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  base_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_release);
}

void TraceEventSink::Stop() {
  active_.store(false, std::memory_order_relaxed);
}

void TraceEventSink::Record(TraceEvent::Type type, std::string_view name,
                            double value) {
  if (!active()) return;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  if (seq >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_[seq];
  slot.event.type = type;
  slot.event.tid = CurrentThreadId();
  slot.event.ts_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - base_)
          .count();
  slot.event.name.assign(name.data(), name.size());
  slot.event.value = value;
  slot.ready.store(true, std::memory_order_release);
}

size_t TraceEventSink::size() const {
  const uint64_t claimed = next_.load(std::memory_order_relaxed);
  return claimed < slots_.size() ? static_cast<size_t>(claimed)
                                 : slots_.size();
}

void TraceEventSink::SetCurrentThreadName(std::string name) {
  const uint32_t tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(names_mu_);
  thread_names_[tid] = std::move(name);
}

std::vector<TraceEvent> TraceEventSink::Events() const {
  std::vector<TraceEvent> events;
  const size_t n = size();
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire)) {
      events.push_back(slots_[i].event);
    }
  }
  return events;
}

std::string TraceEventSink::ExportChromeTrace() const {
  std::string out = "{\"displayTimeUnit\": \"ms\",\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "\"droppedEventCount\": %" PRIu64 ",\n",
                dropped());
  out += buf;
  out += "\"traceEvents\": [";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(names_mu_);
    for (const auto& [tid, name] : thread_names_) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n {\"ph\": \"M\", \"pid\": 1, \"tid\": %u, "
                    "\"name\": \"thread_name\", \"args\": {\"name\": \"",
                    first ? "" : ",", tid);
      out += buf;
      out += JsonEscape(name);
      out += "\"}}";
      first = false;
    }
  }
  for (const TraceEvent& event : Events()) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n {\"ph\": \"%s\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %.3f, \"cat\": \"pasa\", \"name\": \"",
                  first ? "" : ",", PhaseOf(event.type), event.tid,
                  event.ts_micros);
    out += buf;
    out += JsonEscape(event.name);
    out += '"';
    if (event.type == TraceEvent::Type::kInstant) {
      out += ", \"s\": \"t\"";  // thread-scoped instant
    } else if (event.type == TraceEvent::Type::kCounter) {
      std::snprintf(buf, sizeof(buf), ", \"args\": {\"value\": %s}",
                    JsonNumber(event.value).c_str());
      out += buf;
    }
    out += '}';
    first = false;
  }
  out += "\n]}\n";
  return out;
}

Status TraceEventSink::WriteChromeTraceFile(const std::string& path) const {
  return WriteTextFile(path, ExportChromeTrace());
}

}  // namespace obs
}  // namespace pasa
