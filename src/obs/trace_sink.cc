#include "obs/trace_sink.h"

#include <cinttypes>
#include <cstdio>

#include "obs/export.h"
#include "obs/trace_context.h"

namespace pasa {
namespace obs {
namespace {

// Sink-assigned id of the calling thread; 0 = not yet assigned.
thread_local uint32_t tls_trace_tid = 0;

const char* PhaseOf(TraceEvent::Type type) {
  switch (type) {
    case TraceEvent::Type::kBegin:
      return "B";
    case TraceEvent::Type::kEnd:
      return "E";
    case TraceEvent::Type::kInstant:
      return "i";
    case TraceEvent::Type::kCounter:
      return "C";
  }
  return "i";
}

}  // namespace

TraceEventSink& TraceEventSink::Global() {
  static TraceEventSink* sink = new TraceEventSink();
  return *sink;
}

uint32_t TraceEventSink::CurrentThreadId() {
  if (tls_trace_tid == 0) {
    tls_trace_tid = next_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return tls_trace_tid;
}

void TraceEventSink::Start(size_t capacity) {
  active_.store(false, std::memory_order_relaxed);
  if (capacity == 0) capacity = 1;
  // vector<Slot> cannot be resized in place (atomics are immovable), so
  // rebuild; Start is documented as quiescent-only.
  std::vector<Slot> fresh(capacity);
  slots_.swap(fresh);
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  base_ = std::chrono::steady_clock::now();
  wall_base_micros_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  active_.store(true, std::memory_order_release);
}

void TraceEventSink::Stop() {
  active_.store(false, std::memory_order_relaxed);
}

TraceEventSink::Slot* TraceEventSink::ClaimSlot(TraceEvent::Type type,
                                                std::string_view name) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  if (seq >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Slot& slot = slots_[seq];
  slot.event.type = type;
  slot.event.tid = CurrentThreadId();
  slot.event.ts_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - base_)
          .count();
  slot.event.name.assign(name.data(), name.size());
  slot.event.value = 0.0;
  slot.event.trace_id = 0;
  slot.event.span_id = 0;
  slot.event.parent_span_id = 0;
  slot.event.flow_in = false;
  return &slot;
}

void TraceEventSink::Record(TraceEvent::Type type, std::string_view name,
                            double value) {
  if (!active()) return;
  Slot* slot = ClaimSlot(type, name);
  if (slot == nullptr) return;
  slot->event.value = value;
  slot->ready.store(true, std::memory_order_release);
}

void TraceEventSink::RecordSpanEvent(TraceEvent::Type type,
                                     std::string_view name, uint64_t trace_id,
                                     uint64_t span_id,
                                     uint64_t parent_span_id, bool flow_in) {
  if (!active()) return;
  Slot* slot = ClaimSlot(type, name);
  if (slot == nullptr) return;
  slot->event.trace_id = trace_id;
  slot->event.span_id = span_id;
  slot->event.parent_span_id = parent_span_id;
  slot->event.flow_in = flow_in;
  slot->ready.store(true, std::memory_order_release);
}

size_t TraceEventSink::size() const {
  const uint64_t claimed = next_.load(std::memory_order_relaxed);
  return claimed < slots_.size() ? static_cast<size_t>(claimed)
                                 : slots_.size();
}

void TraceEventSink::SetCurrentThreadName(std::string name) {
  const uint32_t tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(names_mu_);
  thread_names_[tid] = std::move(name);
}

std::vector<TraceEvent> TraceEventSink::Events() const {
  std::vector<TraceEvent> events;
  const size_t n = size();
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire)) {
      events.push_back(slots_[i].event);
    }
  }
  return events;
}

std::string TraceEventSink::ExportChromeTrace() const {
  std::string out = "{\"displayTimeUnit\": \"ms\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "\"droppedEventCount\": %" PRIu64 ",\n",
                dropped());
  out += buf;
  // Wall-clock anchor of ts == 0, so trace-merge can align traces recorded
  // by different processes. Ignored by Perfetto itself.
  std::snprintf(buf, sizeof(buf), "\"wallClockBaseMicros\": %" PRIu64 ",\n",
                wall_base_micros_);
  out += buf;
  out += "\"traceEvents\": [";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(names_mu_);
    for (const auto& [tid, name] : thread_names_) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n {\"ph\": \"M\", \"pid\": 1, \"tid\": %u, "
                    "\"name\": \"thread_name\", \"args\": {\"name\": \"",
                    first ? "" : ",", tid);
      out += buf;
      out += JsonEscape(name);
      out += "\"}}";
      first = false;
    }
  }
  for (const TraceEvent& event : Events()) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n {\"ph\": \"%s\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %.3f, \"cat\": \"pasa\", \"name\": \"",
                  first ? "" : ",", PhaseOf(event.type), event.tid,
                  event.ts_micros);
    out += buf;
    out += JsonEscape(event.name);
    out += '"';
    if (event.type == TraceEvent::Type::kInstant) {
      out += ", \"s\": \"t\"";  // thread-scoped instant
    } else if (event.type == TraceEvent::Type::kCounter) {
      std::snprintf(buf, sizeof(buf), ", \"args\": {\"value\": %s}",
                    JsonNumber(event.value).c_str());
      out += buf;
    } else if (event.type == TraceEvent::Type::kBegin &&
               event.trace_id != 0) {
      std::snprintf(buf, sizeof(buf),
                    ", \"args\": {\"trace_id\": \"%s\", \"span_id\": \"%s\", "
                    "\"parent_span_id\": \"%s\"}",
                    TraceIdHex(event.trace_id).c_str(),
                    TraceIdHex(event.span_id).c_str(),
                    TraceIdHex(event.parent_span_id).c_str());
      out += buf;
    }
    out += '}';
    first = false;
    // Flow events knit the cross-process request together: the locally
    // originated root span starts the arrow ("s"), the first span opened
    // under a remotely adopted context finishes it ("f", enclosing-slice
    // binding). Both sides key on the shared trace id.
    if (event.type == TraceEvent::Type::kBegin && event.trace_id != 0 &&
        (event.flow_in || event.parent_span_id == 0)) {
      std::snprintf(buf, sizeof(buf),
                    ",\n {\"ph\": \"%s\", %s\"id\": \"%s\", \"pid\": 1, "
                    "\"tid\": %u, \"ts\": %.3f, \"cat\": \"pasa\", "
                    "\"name\": \"request\"}",
                    event.flow_in ? "f" : "s",
                    event.flow_in ? "\"bp\": \"e\", " : "",
                    TraceIdHex(event.trace_id).c_str(), event.tid,
                    event.ts_micros);
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

Status TraceEventSink::WriteChromeTraceFile(const std::string& path) const {
  return WriteTextFile(path, ExportChromeTrace());
}

}  // namespace obs
}  // namespace pasa
