#ifndef PASA_OBS_BENCHSTAT_H_
#define PASA_OBS_BENCHSTAT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace pasa {
namespace obs {
namespace benchstat {

/// Summary statistics of one measurement (e.g. a span's total seconds)
/// across N repeated harness runs.
struct Measurement {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (N-1); 0 when N < 2
  double min = 0.0;
  uint64_t samples = 0;
};

/// One canonical BENCH_<name>.json performance snapshot: the tracked unit
/// of the repo's perf trajectory. Compare two snapshots (an old committed
/// one against a fresh run) to prove or refute an optimization claim.
struct Snapshot {
  std::string name;
  int iterations = 0;
  std::map<std::string, Measurement> measurements;
};

/// Folds per-run samples (measurement key -> value, one map per run) into
/// a snapshot. Keys missing from some runs aggregate over the runs that
/// have them.
Snapshot Aggregate(const std::string& name,
                   const std::vector<std::map<std::string, double>>& runs);

/// Deterministic JSON serialization:
///
///   { "name": "fig4a", "iterations": 5,
///     "measurements": {
///       "span/bulk_dp": {"mean": 1.92, "stddev": 0.05, "min": 1.87,
///                        "samples": 5}, ... } }
std::string ToJson(const Snapshot& snapshot);
Result<Snapshot> FromJson(const json::Value& document);

/// File round trip; Write creates missing parent directories.
Status WriteSnapshotFile(const Snapshot& snapshot, const std::string& path);
Result<Snapshot> LoadSnapshotFile(const std::string& path);

/// Extracts benchstat measurements from a pasa::obs metrics JSON document
/// (the bench/out/<name>.metrics.json a harness writes): every span's
/// total_seconds becomes "span/<path>", every histogram's mean becomes
/// "hist/<name>/mean_seconds". Counters and gauges are not timings and
/// are skipped.
std::map<std::string, double> MeasurementsFromMetricsJson(
    const json::Value& document);

struct CompareOptions {
  /// Relative slowdown (candidate mean vs baseline mean) above which a
  /// measurement is flagged, e.g. 0.10 = +10%.
  double threshold = 0.10;
  /// A delta is ignored as noise unless it also exceeds
  /// noise_sigma * (baseline.stddev + candidate.stddev). 0 disables the
  /// noise gate.
  double noise_sigma = 2.0;
};

enum class Verdict {
  kUnchanged,    ///< within threshold
  kWithinNoise,  ///< beyond threshold but inside the noise gate
  kImprovement,  ///< candidate faster than baseline beyond both gates
  kRegression,   ///< candidate slower than baseline beyond both gates
};

const char* VerdictName(Verdict verdict);

struct KeyComparison {
  std::string key;
  double baseline_mean = 0.0;
  double candidate_mean = 0.0;
  double delta_percent = 0.0;  ///< (candidate - baseline) / baseline * 100
  Verdict verdict = Verdict::kUnchanged;
};

struct CompareReport {
  std::vector<KeyComparison> rows;  ///< shared keys, sorted
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_candidate;

  bool HasRegression() const {
    for (const KeyComparison& row : rows) {
      if (row.verdict == Verdict::kRegression) return true;
    }
    return false;
  }
};

/// Compares every measurement key the two snapshots share. Measurements
/// are times: a higher candidate mean is a slowdown.
CompareReport Compare(const Snapshot& baseline, const Snapshot& candidate,
                      const CompareOptions& options);

/// Human-readable comparison table plus a one-line summary.
std::string ReportTable(const CompareReport& report);

}  // namespace benchstat
}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_BENCHSTAT_H_
