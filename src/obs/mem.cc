#include "obs/mem.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/table.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/provenance.h"
#include "obs/tail_trace.h"
#include "obs/trace_sink.h"

namespace pasa {
namespace obs {

MemoryAccountant& MemoryAccountant::Global() {
  static MemoryAccountant* instance = new MemoryAccountant();
  return *instance;
}

MemCounter& MemoryAccountant::GetCounter(const std::string& subsystem) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<MemCounter>& slot = counters_[subsystem];
  if (slot == nullptr) slot = std::make_unique<MemCounter>();
  return *slot;
}

std::map<std::string, uint64_t> MemoryAccountant::Snapshot() const {
  std::map<std::string, uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->bytes();
  }
  return out;
}

uint64_t MemoryAccountant::TotalBytes() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    total += counter->bytes();
  }
  return total;
}

void MemoryAccountant::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
}

void MemoryAccountant::PublishGauges(MetricsRegistry& registry) const {
  uint64_t total = 0;
  for (const auto& [name, bytes] : Snapshot()) {
    total += bytes;
    registry.GetGauge(LabeledName("mem/bytes", {{"subsystem", name}}))
        .Set(static_cast<double>(bytes));
  }
  registry.GetGauge("mem/total_bytes").Set(static_cast<double>(total));
}

std::string MemoryAccountant::ExportJson(size_t users) const {
  const std::map<std::string, uint64_t> snapshot = Snapshot();
  uint64_t total = 0;
  for (const auto& [name, bytes] : snapshot) total += bytes;

  std::string out = "{\n";
  char line[160];
  std::snprintf(line, sizeof(line), "\"total_bytes\": %" PRIu64 ",\n", total);
  out += line;
  if (users > 0) {
    std::snprintf(line, sizeof(line),
                  "\"users\": %zu,\n\"bytes_per_user\": %.2f,\n", users,
                  static_cast<double>(total) / static_cast<double>(users));
    out += line;
  }
  out += "\"subsystems\": {";
  bool first = true;
  for (const auto& [name, bytes] : snapshot) {
    out += first ? "\n" : ",\n";
    first = false;
    // Subsystem names are ASCII path-style identifiers; no escaping needed
    // beyond trusting our own call sites.
    std::snprintf(line, sizeof(line), " \"%s\": %" PRIu64, name.c_str(),
                  bytes);
    out += line;
  }
  out += "\n}\n}\n";
  return out;
}

std::string MemoryAccountant::SummaryTable() const {
  const std::map<std::string, uint64_t> snapshot = Snapshot();
  uint64_t total = 0;
  for (const auto& [name, bytes] : snapshot) total += bytes;

  std::vector<std::pair<std::string, uint64_t>> rows(snapshot.begin(),
                                                     snapshot.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  TablePrinter table({"subsystem", "bytes", "MiB", "share"});
  for (const auto& [name, bytes] : rows) {
    char mib[32];
    std::snprintf(mib, sizeof(mib), "%.2f",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
    char share[32];
    std::snprintf(share, sizeof(share), "%5.1f%%",
                  total == 0 ? 0.0
                             : 100.0 * static_cast<double>(bytes) /
                                   static_cast<double>(total));
    table.AddRow({name, TablePrinter::Cell(static_cast<int64_t>(bytes)), mib,
                  share});
  }
  char mib[32];
  std::snprintf(mib, sizeof(mib), "%.2f",
                static_cast<double>(total) / (1024.0 * 1024.0));
  table.AddRow({"total", TablePrinter::Cell(static_cast<int64_t>(total)),
                mib, "100.0%"});
  return table.ToString();
}

void ReportObsMemory(MemoryAccountant& accountant) {
  accountant.GetCounter("obs/provenance_ring")
      .Set(ProvenanceRing::Global().ApproxBytes());
  accountant.GetCounter("obs/trace_sink")
      .Set(TraceEventSink::Global().ApproxBytes());
  accountant.GetCounter("obs/tail_trace")
      .Set(TailTraceRing::Global().ApproxBytes());
  accountant.GetCounter("obs/profiler")
      .Set(Profiler::Global().ApproxBytes());
}

}  // namespace obs
}  // namespace pasa
