#ifndef PASA_OBS_TRACE_H_
#define PASA_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace pasa {
namespace obs {

/// RAII phase timer that folds its lifetime into the global registry's span
/// aggregate. Spans nest per thread: a span opened while another is active
/// on the same thread records under "<parent_path>/<name>", so
///
///   ScopedSpan outer("csp/advance_snapshot", ScopedSpan::kRoot);
///   ScopedSpan inner("repair");   // records as csp/advance_snapshot/repair
///
/// Pass kRoot to anchor a span at the top level regardless of any enclosing
/// span — used by subsystem entry points (e.g. "bulk_dp") whose exported
/// names must be stable no matter which caller reached them.
///
/// A span constructed while the layer is disabled stays inert for its whole
/// lifetime, even if the layer is re-enabled before it closes.
///
/// When the global TraceEventSink is active (see obs/trace_sink.h), each
/// span additionally emits paired begin/end timeline events, so the same
/// instrumentation feeds both the aggregate SpanStats and the Chrome
/// trace_event export.
class ScopedSpan {
 public:
  enum Anchor { kNested, kRoot };

  explicit ScopedSpan(std::string_view name, Anchor anchor = kNested);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Full '/'-joined path this span records under (empty when inert).
  const std::string& path() const { return path_; }

 private:
  bool active_ = false;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII latency sampler: observes its own lifetime (in seconds) into a
/// histogram on destruction, covering every exit path of the enclosing
/// scope. Inert when the layer is disabled at construction.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& histogram)
      : histogram_(histogram), active_(Enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedHistogramTimer() {
    if (!active_) return;
    histogram_.Observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram& histogram_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

/// Path of the innermost span currently open on this thread ("" if none).
/// Exposed for tests and for instrumentation that wants to attach
/// aggregated phases under the active span.
const std::string& CurrentSpanPath();

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_TRACE_H_
