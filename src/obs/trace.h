#ifndef PASA_OBS_TRACE_H_
#define PASA_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace pasa {
namespace obs {

/// RAII phase timer that folds its lifetime into the global registry's span
/// aggregate. Spans nest per thread: a span opened while another is active
/// on the same thread records under "<parent_path>/<name>", so
///
///   ScopedSpan outer("csp/advance_snapshot", ScopedSpan::kRoot);
///   ScopedSpan inner("repair");   // records as csp/advance_snapshot/repair
///
/// Pass kRoot to anchor a span at the top level regardless of any enclosing
/// span — used by subsystem entry points (e.g. "bulk_dp") whose exported
/// names must be stable no matter which caller reached them.
///
/// A span constructed while the layer is disabled stays inert for its whole
/// lifetime, even if the layer is re-enabled before it closes.
///
/// When the global TraceEventSink is active (see obs/trace_sink.h), each
/// span additionally emits paired begin/end timeline events, so the same
/// instrumentation feeds both the aggregate SpanStats and the Chrome
/// trace_event export.
///
/// When a distributed TraceContext is active on the thread (see
/// obs/trace_context.h), the span also allocates a span id, parents itself
/// under the context's current span, stamps its trace identity onto the
/// emitted timeline events, and reports itself to the armed SpanCollector
/// (if any) on close. With no context active this costs one thread-local
/// read.
class ScopedSpan {
 public:
  enum Anchor { kNested, kRoot };

  explicit ScopedSpan(std::string_view name, Anchor anchor = kNested);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Full '/'-joined path this span records under (empty when inert).
  const std::string& path() const { return path_; }

  /// Distributed-trace identity (0 when no context was active).
  uint64_t span_id() const { return span_id_; }
  uint64_t trace_id() const { return trace_id_; }

 private:
  bool active_ = false;
  bool flow_in_ = false;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
};

/// RAII latency sampler: observes its own lifetime (in seconds) into a
/// histogram on destruction, covering every exit path of the enclosing
/// scope. Inert when the layer is disabled at construction.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& histogram)
      : histogram_(histogram), active_(Enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedHistogramTimer() {
    if (!active_) return;
    histogram_.Observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram& histogram_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

/// Path of the innermost span currently open on this thread ("" if none).
/// Exposed for tests and for instrumentation that wants to attach
/// aggregated phases under the active span.
const std::string& CurrentSpanPath();

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_TRACE_H_
