#include "obs/benchstat.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.h"
#include "obs/export.h"

namespace pasa {
namespace obs {
namespace benchstat {

Snapshot Aggregate(const std::string& name,
                   const std::vector<std::map<std::string, double>>& runs) {
  Snapshot snapshot;
  snapshot.name = name;
  snapshot.iterations = static_cast<int>(runs.size());
  std::map<std::string, std::vector<double>> samples_of;
  for (const auto& run : runs) {
    for (const auto& [key, value] : run) samples_of[key].push_back(value);
  }
  for (const auto& [key, samples] : samples_of) {
    Measurement m;
    m.samples = samples.size();
    m.min = *std::min_element(samples.begin(), samples.end());
    double sum = 0.0;
    for (const double v : samples) sum += v;
    m.mean = sum / static_cast<double>(samples.size());
    if (samples.size() > 1) {
      double sq = 0.0;
      for (const double v : samples) sq += (v - m.mean) * (v - m.mean);
      m.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
    }
    snapshot.measurements[key] = m;
  }
  return snapshot;
}

std::string ToJson(const Snapshot& snapshot) {
  std::string out = "{\n  \"name\": \"" + JsonEscape(snapshot.name) +
                    "\",\n  \"iterations\": " +
                    std::to_string(snapshot.iterations) +
                    ",\n  \"measurements\": {";
  bool first = true;
  char buf[256];
  for (const auto& [key, m] : snapshot.measurements) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n    \"%s\": {\"mean\": %s, \"stddev\": %s, "
                  "\"min\": %s, \"samples\": %" PRIu64 "}",
                  first ? "" : ",", JsonEscape(key).c_str(),
                  JsonNumber(m.mean).c_str(), JsonNumber(m.stddev).c_str(),
                  JsonNumber(m.min).c_str(), m.samples);
    out += buf;
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Result<Snapshot> FromJson(const json::Value& document) {
  if (!document.is_object()) {
    return Status::InvalidArgument("benchstat snapshot: not a JSON object");
  }
  Snapshot snapshot;
  if (const json::Value* name = document.Find("name")) {
    snapshot.name = name->str();
  }
  if (const json::Value* iterations = document.Find("iterations")) {
    snapshot.iterations = static_cast<int>(iterations->number());
  }
  const json::Value* measurements = document.Find("measurements");
  if (measurements == nullptr || !measurements->is_object()) {
    return Status::InvalidArgument(
        "benchstat snapshot: missing \"measurements\" object");
  }
  for (const auto& [key, entry] : measurements->object()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("benchstat snapshot: measurement '" +
                                     key + "' is not an object");
    }
    Measurement m;
    if (const json::Value* v = entry.Find("mean")) m.mean = v->number();
    if (const json::Value* v = entry.Find("stddev")) m.stddev = v->number();
    if (const json::Value* v = entry.Find("min")) m.min = v->number();
    if (const json::Value* v = entry.Find("samples")) {
      m.samples = static_cast<uint64_t>(v->number());
    }
    snapshot.measurements[key] = m;
  }
  return snapshot;
}

Status WriteSnapshotFile(const Snapshot& snapshot, const std::string& path) {
  return WriteTextFile(path, ToJson(snapshot));
}

Result<Snapshot> LoadSnapshotFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open snapshot file " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  Result<json::Value> document = json::Parse(content.str());
  if (!document.ok()) {
    return Status::InvalidArgument("snapshot file " + path + ": " +
                                   document.status().message());
  }
  return FromJson(*document);
}

std::map<std::string, double> MeasurementsFromMetricsJson(
    const json::Value& document) {
  std::map<std::string, double> measurements;
  if (const json::Value* spans = document.Find("spans")) {
    for (const auto& [path, span] : spans->object()) {
      if (const json::Value* total = span.Find("total_seconds")) {
        measurements["span/" + path] = total->number();
      }
    }
  }
  if (const json::Value* histograms = document.Find("histograms")) {
    for (const auto& [name, histogram] : histograms->object()) {
      const json::Value* count = histogram.Find("count");
      const json::Value* sum = histogram.Find("sum");
      if (count != nullptr && sum != nullptr && count->number() > 0) {
        measurements["hist/" + name + "/mean_seconds"] =
            sum->number() / count->number();
      }
    }
  }
  return measurements;
}

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kUnchanged:
      return "unchanged";
    case Verdict::kWithinNoise:
      return "within-noise";
    case Verdict::kImprovement:
      return "improvement";
    case Verdict::kRegression:
      return "REGRESSION";
  }
  return "unchanged";
}

CompareReport Compare(const Snapshot& baseline, const Snapshot& candidate,
                      const CompareOptions& options) {
  CompareReport report;
  for (const auto& [key, base] : baseline.measurements) {
    const auto it = candidate.measurements.find(key);
    if (it == candidate.measurements.end()) {
      report.only_in_baseline.push_back(key);
      continue;
    }
    const Measurement& cand = it->second;
    KeyComparison row;
    row.key = key;
    row.baseline_mean = base.mean;
    row.candidate_mean = cand.mean;
    const double delta = cand.mean - base.mean;
    row.delta_percent = base.mean != 0.0 ? delta / base.mean * 100.0 : 0.0;
    const bool beyond_threshold =
        base.mean != 0.0 &&
        std::abs(delta) > options.threshold * std::abs(base.mean);
    const double noise =
        options.noise_sigma * (base.stddev + cand.stddev);
    if (!beyond_threshold) {
      row.verdict = Verdict::kUnchanged;
    } else if (std::abs(delta) <= noise) {
      row.verdict = Verdict::kWithinNoise;
    } else {
      row.verdict = delta > 0 ? Verdict::kRegression : Verdict::kImprovement;
    }
    report.rows.push_back(std::move(row));
  }
  for (const auto& [key, cand] : candidate.measurements) {
    if (baseline.measurements.count(key) == 0) {
      report.only_in_candidate.push_back(key);
    }
  }
  return report;
}

std::string ReportTable(const CompareReport& report) {
  TablePrinter table({"measurement", "baseline", "candidate", "delta",
                      "verdict"});
  size_t regressions = 0;
  for (const KeyComparison& row : report.rows) {
    char baseline[48], candidate[48], delta[48];
    std::snprintf(baseline, sizeof(baseline), "%.6g s", row.baseline_mean);
    std::snprintf(candidate, sizeof(candidate), "%.6g s", row.candidate_mean);
    std::snprintf(delta, sizeof(delta), "%+.1f%%", row.delta_percent);
    table.AddRow({row.key, baseline, candidate, delta,
                  VerdictName(row.verdict)});
    if (row.verdict == Verdict::kRegression) ++regressions;
  }
  std::string out = table.ToString();
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "%zu measurement(s) compared, %zu regression(s), "
                "%zu only-in-baseline, %zu only-in-candidate\n",
                report.rows.size(), regressions,
                report.only_in_baseline.size(),
                report.only_in_candidate.size());
  out += summary;
  return out;
}

}  // namespace benchstat
}  // namespace obs
}  // namespace pasa
