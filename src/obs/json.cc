#include "obs/json.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace pasa {
namespace obs {
namespace json {
namespace {

const std::string kEmptyString;
const std::vector<Value> kEmptyArray;
const std::map<std::string, Value> kEmptyObject;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    Result<Value> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (ConsumeLiteral("null")) return Value();
        return Error("invalid literal");
      case 't':
        if (ConsumeLiteral("true")) return Value::MakeBool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value::MakeBool(false);
        return Error("invalid literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray();
      case '{':
        return ParseObject();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error("unexpected character");
    }
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return Error("malformed number");
    return Value::MakeNumber(parsed);
  }

  // Appends `code_point` to `out` as UTF-8.
  static void AppendUtf8(uint32_t code_point, std::string* out) {
    if (code_point < 0x80) {
      *out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      *out += static_cast<char>(0xC0 | (code_point >> 6));
      *out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (code_point >> 12));
      *out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  Result<Value> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Value::MakeString(std::move(out));
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          AppendUtf8(code, &out);  // surrogate pairs not recombined
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseArray() {
    if (!Consume('[')) return Error("expected array");
    std::vector<Value> items;
    SkipWhitespace();
    if (Consume(']')) return Value::MakeArray(std::move(items));
    for (;;) {
      Result<Value> item = ParseValue();
      if (!item.ok()) return item;
      items.push_back(std::move(*item));
      SkipWhitespace();
      if (Consume(']')) return Value::MakeArray(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseObject() {
    if (!Consume('{')) return Error("expected object");
    std::map<std::string, Value> members;
    SkipWhitespace();
    if (Consume('}')) return Value::MakeObject(std::move(members));
    for (;;) {
      SkipWhitespace();
      Result<Value> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      Result<Value> value = ParseValue();
      if (!value.ok()) return value;
      members[key->str()] = std::move(*value);
      SkipWhitespace();
      if (Consume('}')) return Value::MakeObject(std::move(members));
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Value Value::MakeBool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::MakeNumber(double n) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

Value Value::MakeString(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::MakeArray(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::MakeObject(std::map<std::string, Value> members) {
  Value v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

const std::string& Value::str() const {
  return is_string() ? string_ : kEmptyString;
}

const std::vector<Value>& Value::array() const {
  return is_array() ? array_ : kEmptyArray;
}

const std::map<std::string, Value>& Value::object() const {
  return is_object() ? object_ : kEmptyObject;
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendNumber(double n, std::string* out) {
  if (!(n == n) || n - n != 0.0) {  // NaN or +/-Inf
    *out += '0';
    return;
  }
  const double rounded = n < 0 ? -static_cast<double>(
      static_cast<uint64_t>(-n)) : static_cast<double>(
      static_cast<uint64_t>(n));
  if (rounded == n && n < 9007199254740992.0 && n > -9007199254740992.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    *out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  *out += buf;
}

void SerializeInto(const Value& value, std::string* out) {
  switch (value.type()) {
    case Value::Type::kNull:
      *out += "null";
      break;
    case Value::Type::kBool:
      *out += value.boolean() ? "true" : "false";
      break;
    case Value::Type::kNumber:
      AppendNumber(value.number(), out);
      break;
    case Value::Type::kString:
      AppendEscaped(value.str(), out);
      break;
    case Value::Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Value& item : value.array()) {
        if (!first) *out += ',';
        first = false;
        SerializeInto(item, out);
      }
      *out += ']';
      break;
    }
    case Value::Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, member] : value.object()) {
        if (!first) *out += ',';
        first = false;
        AppendEscaped(key, out);
        *out += ':';
        SerializeInto(member, out);
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

std::string Serialize(const Value& value) {
  std::string out;
  SerializeInto(value, &out);
  return out;
}

}  // namespace json
}  // namespace obs
}  // namespace pasa
