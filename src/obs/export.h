#ifndef PASA_OBS_EXPORT_H_
#define PASA_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace pasa {
namespace obs {

/// Serializes a snapshot as structured JSON:
///
///   {
///     "counters":   { "lbs/answer_cache/hits": 12, ... },
///     "gauges":     { ... },
///     "histograms": { "csp/handle_request_seconds":
///                       { "count": N, "sum": S,
///                         "buckets": [ {"le": 1e-06, "count": c}, ...,
///                                      {"le": "+Inf", "count": c} ] }, ... },
///     "spans":      { "bulk_dp/leaf_init":
///                       { "count": N, "total_seconds": T,
///                         "min_seconds": m, "max_seconds": M }, ... }
///   }
///
/// When the snapshot carries windowed telemetry or SLO states (see
/// FullSnapshot), two extra sections follow:
///
///     "windows": { "histograms": { name: {"window_micros": W, "count": N,
///                                         "sum": S, "p50": ..., "p95": ...,
///                                         "p99": ...} },
///                  "rates":      { name: {"window_micros": W, "good": G,
///                                         "total": T, "rate": R} } },
///     "slos":    [ {"name": ..., "kind": "availability", "target": ...,
///                   "alerting": false, "fast_burn": ..., "slow_burn": ...,
///                   "fast_good": ..., "fast_total": ..., "slow_good": ...,
///                   "slow_total": ..., "alerts_fired": ...,
///                   "alerts_resolved": ...} ]
///
/// Keys are emitted in sorted order, so output is deterministic.
std::string ExportJson(const MetricsSnapshot& snapshot);

/// Serializes a snapshot in the Prometheus text exposition format. Metric
/// paths are sanitized ('/' and other non-[a-zA-Z0-9_] become '_') and
/// prefixed with "pasa_"; histograms emit cumulative _bucket/_sum/_count
/// series, spans emit _seconds_total and _count series with the original
/// path as a {span="..."} label. Registry keys produced by LabeledName
/// ("name{k=\"v\"}") become labeled series of one family: every series of a
/// family is emitted contiguously under a single # HELP/# TYPE header, and
/// label values (span paths, SLO names, LabeledName values) are escaped per
/// the exposition format. Output passes CheckPrometheusText.
///
/// With `include_exemplars`, histogram `_bucket` lines whose bucket holds a
/// traced observation (see Histogram::Observe(value, trace_id)) gain an
/// OpenMetrics exemplar suffix:
///
///   pasa_net_serve_latency_seconds_bucket{le="0.005"} 17 # {trace_id="b3e1..."} 0.0042
///
/// Exemplars are max-per-bucket, so the highest non-empty bucket's exemplar
/// references the globally slowest traced request — what `tools/ci.sh`
/// cross-checks against /trace and the merged Perfetto timeline.
std::string ExportPrometheus(const MetricsSnapshot& snapshot,
                             bool include_exemplars = false);

/// Validates `text` against the Prometheus text exposition format: every
/// line must be a #-comment (with well-formed `# TYPE` / `# HELP` shapes), a
/// blank line, or a `name{labels} value [timestamp]` sample with legal
/// metric/label names, only `\\` `\"` `\n` escapes in label values, and a
/// parseable value; each family gets at most one TYPE, declared before its
/// samples, with all its samples contiguous; the text ends with a newline.
/// An OpenMetrics exemplar suffix (`# {label="v",...} value`) is accepted —
/// and fully validated — on histogram `_bucket` samples only.
/// Returns InvalidArgument naming the first offending line otherwise. Used
/// by `pasa_cli scrape --check` and the CI exposition-format gate.
Status CheckPrometheusText(const std::string& text);

/// Snapshot of the global MetricsRegistry augmented with the global
/// window registry and SLO tracker (evaluated at the SimClock's current
/// simulated time) when those are armed; a plain metrics snapshot
/// otherwise. What the CLI dump and run report consume.
MetricsSnapshot FullSnapshot();

/// Snapshots `registry` (augmented like FullSnapshot when `registry` is
/// the global one) and writes the JSON export to `path`, creating missing
/// parent directories first (so `--metrics-out runs/today/m.json` works
/// without a pre-existing `runs/today/`).
Status WriteJsonFile(const MetricsRegistry& registry, const std::string& path);

/// Writes `content` to `path`, creating missing parent directories.
/// Shared by the metrics, trace and benchstat writers.
Status WriteTextFile(const std::string& path, const std::string& content);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Formats a finite double as a JSON number; non-finite values (which JSON
/// cannot represent) serialize as 0.
std::string JsonNumber(double v);

/// One-line-per-metric human dump of the most useful metrics (span totals,
/// counters, histogram count/mean/p50-ish summaries) for CLI output.
std::string SummaryTable(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_EXPORT_H_
