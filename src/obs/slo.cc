#include "obs/slo.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace pasa {
namespace obs {
namespace {

/// bad_fraction / (1 - target); an empty window burns nothing. A
/// zero-tolerance objective (budget 0) burns kInfiniteBurn the moment a
/// single bad event is in the window.
double BurnRate(const SlidingWindowRate::Stats& stats, double target) {
  if (stats.total == 0) return 0.0;
  const double bad_fraction =
      1.0 - static_cast<double>(stats.good) / static_cast<double>(stats.total);
  const double budget = 1.0 - target;
  if (budget <= 0.0) return bad_fraction > 0.0 ? kInfiniteBurn : 0.0;
  return bad_fraction / budget;
}

}  // namespace

const char* SloKindName(SloObjective::Kind kind) {
  switch (kind) {
    case SloObjective::Kind::kAvailability:
      return "availability";
    case SloObjective::Kind::kLatency:
      return "latency";
    case SloObjective::Kind::kZeroViolations:
      return "zero_violations";
  }
  return "unknown";
}

Result<SloObjective::Kind> ParseSloKind(std::string_view name) {
  if (name == "availability") return SloObjective::Kind::kAvailability;
  if (name == "latency") return SloObjective::Kind::kLatency;
  if (name == "zero_violations") return SloObjective::Kind::kZeroViolations;
  return Status::InvalidArgument("unknown SLO kind '" + std::string(name) +
                                 "'");
}

namespace {

/// Reads an optional positive number member into `*out`.
Status ReadPositive(const json::Value& entry, const std::string& key,
                    double* out) {
  const json::Value* v = entry.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number() || v->number() <= 0.0) {
    return Status::InvalidArgument("slo config: \"" + key +
                                   "\" must be a positive number");
  }
  *out = v->number();
  return Status::Ok();
}

}  // namespace

Result<std::vector<SloObjective>> SloObjectivesFromJson(
    std::string_view text) {
  Result<json::Value> document = json::Parse(text);
  if (!document.ok()) {
    return Status::InvalidArgument("slo config: " +
                                   document.status().message());
  }
  if (!document->is_object()) {
    return Status::InvalidArgument("slo config: top level must be an object");
  }
  const json::Value* objectives = document->Find("objectives");
  if (objectives == nullptr || !objectives->is_array()) {
    return Status::InvalidArgument(
        "slo config: missing \"objectives\" array");
  }
  std::vector<SloObjective> out;
  std::set<std::string> seen;
  for (const json::Value& entry : objectives->array()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument(
          "slo config: every objective must be an object");
    }
    SloObjective o;
    const json::Value* name = entry.Find("name");
    if (name == nullptr || !name->is_string() || name->str().empty()) {
      return Status::InvalidArgument(
          "slo config: objective is missing a \"name\" string");
    }
    o.name = name->str();
    if (!seen.insert(o.name).second) {
      return Status::InvalidArgument("slo config: duplicate objective \"" +
                                     o.name + "\"");
    }
    const json::Value* kind = entry.Find("kind");
    if (kind == nullptr || !kind->is_string()) {
      return Status::InvalidArgument("slo config: objective \"" + o.name +
                                     "\" is missing a \"kind\" string");
    }
    Result<SloObjective::Kind> parsed_kind = ParseSloKind(kind->str());
    if (!parsed_kind.ok()) {
      return Status::InvalidArgument("slo config: " +
                                     parsed_kind.status().message());
    }
    o.kind = *parsed_kind;
    if (const json::Value* target = entry.Find("target")) {
      if (!target->is_number() || target->number() <= 0.0 ||
          target->number() > 1.0) {
        return Status::InvalidArgument(
            "slo config: \"target\" must be in (0, 1]");
      }
      o.target = target->number();
    }
    Status s = ReadPositive(entry, "latency_threshold_seconds",
                            &o.latency_threshold_seconds);
    if (!s.ok()) return s;
    double fast = static_cast<double>(o.fast_window_micros);
    double slow = static_cast<double>(o.slow_window_micros);
    if (s = ReadPositive(entry, "fast_window_micros", &fast); !s.ok()) {
      return s;
    }
    if (s = ReadPositive(entry, "slow_window_micros", &slow); !s.ok()) {
      return s;
    }
    o.fast_window_micros = static_cast<uint64_t>(fast);
    o.slow_window_micros = static_cast<uint64_t>(slow);
    if (s = ReadPositive(entry, "burn_alert_threshold",
                         &o.burn_alert_threshold);
        !s.ok()) {
      return s;
    }
    out.push_back(std::move(o));
  }
  return out;
}

Result<std::vector<SloObjective>> SloObjectivesFromJsonFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot read slo config " + path);
  std::ostringstream content;
  content << file.rdbuf();
  return SloObjectivesFromJson(content.str());
}

std::vector<SloObjective> DefaultServingObjectives() {
  std::vector<SloObjective> objectives;
  {
    SloObjective o;
    o.name = kSloAvailability;
    o.kind = SloObjective::Kind::kAvailability;
    o.target = 0.999;
    objectives.push_back(o);
  }
  {
    SloObjective o;
    o.name = kSloServeLatency;
    o.kind = SloObjective::Kind::kLatency;
    o.target = 0.99;
    o.latency_threshold_seconds = 0.005;
    objectives.push_back(o);
  }
  {
    SloObjective o;
    o.name = kSloAnonymity;
    o.kind = SloObjective::Kind::kZeroViolations;
    o.target = 1.0;
    objectives.push_back(o);
  }
  return objectives;
}

SloTracker& SloTracker::Global() {
  static SloTracker* tracker = new SloTracker();
  return *tracker;
}

void SloTracker::Configure(std::vector<SloObjective> objectives) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  for (SloObjective& objective : objectives) {
    if (objective.kind == SloObjective::Kind::kZeroViolations) {
      objective.target = 1.0;
    }
    entries_[objective.name] = std::make_unique<Entry>(objective);
  }
}

void SloTracker::EnsureObjective(const SloObjective& objective) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = entries_[objective.name];
  if (!slot) {
    SloObjective copy = objective;
    if (copy.kind == SloObjective::Kind::kZeroViolations) copy.target = 1.0;
    slot = std::make_unique<Entry>(copy);
  }
}

void SloTracker::Record(const std::string& name, bool good,
                        uint64_t now_micros) {
  if (!enabled()) return;
  int transition = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) return;
    Entry& entry = *it->second;
    entry.fast.Record(good, now_micros);
    entry.slow.Record(good, now_micros);
    EvaluateEntryLocked(&entry, now_micros, &transition);
  }
  if (transition != 0) EmitTransition(name, transition);
}

void SloTracker::RecordLatency(const std::string& name, double seconds,
                               uint64_t now_micros) {
  if (!enabled()) return;
  double threshold = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) return;
    threshold = it->second->objective.latency_threshold_seconds;
  }
  Record(name, seconds <= threshold, now_micros);
}

SloState SloTracker::EvaluateEntryLocked(Entry* entry, uint64_t now_micros,
                                         int* transition) {
  const SlidingWindowRate::Stats fast = entry->fast.Snapshot(now_micros);
  const SlidingWindowRate::Stats slow = entry->slow.Snapshot(now_micros);
  const double target = entry->objective.target;
  const double fast_burn = BurnRate(fast, target);
  const double slow_burn = BurnRate(slow, target);
  const double threshold = entry->objective.burn_alert_threshold;
  const bool should_alert = fast_burn >= threshold && slow_burn >= threshold;
  *transition = 0;
  if (should_alert && !entry->alerting) {
    entry->alerting = true;
    ++entry->fired;
    *transition = 1;
  } else if (!should_alert && entry->alerting) {
    entry->alerting = false;
    ++entry->resolved;
    *transition = -1;
  }
  SloState state;
  state.name = entry->objective.name;
  state.kind = entry->objective.kind;
  state.target = target;
  state.alerting = entry->alerting;
  state.fast_burn = fast_burn;
  state.slow_burn = slow_burn;
  state.fast_good = fast.good;
  state.fast_total = fast.total;
  state.slow_good = slow.good;
  state.slow_total = slow.total;
  state.alerts_fired = entry->fired;
  state.alerts_resolved = entry->resolved;
  return state;
}

void SloTracker::EmitTransition(const std::string& name, int transition) {
  if (transition > 0) {
    LogWarn("slo", "burn-rate alert FIRED for %s", name.c_str());
    TraceInstant("slo/" + name + "/fired");
    MetricsRegistry::Global().GetCounter("slo/alerts_fired").Increment();
  } else if (transition < 0) {
    LogInfo("slo", "burn-rate alert resolved for %s", name.c_str());
    TraceInstant("slo/" + name + "/resolved");
    MetricsRegistry::Global().GetCounter("slo/alerts_resolved").Increment();
  }
}

std::vector<SloState> SloTracker::Evaluate(uint64_t now_micros) {
  std::vector<SloState> states;
  std::vector<std::pair<std::string, int>> transitions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    states.reserve(entries_.size());
    for (auto& [name, entry] : entries_) {
      int transition = 0;
      states.push_back(EvaluateEntryLocked(entry.get(), now_micros,
                                           &transition));
      if (transition != 0) transitions.emplace_back(name, transition);
    }
  }
  for (const auto& [name, transition] : transitions) {
    EmitTransition(name, transition);
  }
  return states;
}

void SloTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    entry->fast.Reset();
    entry->slow.Reset();
    entry->alerting = false;
    entry->fired = 0;
    entry->resolved = 0;
  }
}

}  // namespace obs
}  // namespace pasa
