#ifndef PASA_OBS_METRICS_H_
#define PASA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/slo.h"
#include "obs/window.h"

namespace pasa {
namespace obs {

/// Process-wide switches for the observability layer.
struct ObsOptions {
  /// Runtime kill switch. When false, every Counter::Increment,
  /// Gauge::Set, Histogram::Observe and ScopedSpan degenerates to one
  /// relaxed atomic load plus a predictable branch, making the layer
  /// near-zero-cost on instrumented hot paths (verified by
  /// bench_obs_overhead).
  bool enabled = true;
};

/// Installs `options` process-wide. Thread-safe; takes effect immediately
/// for metric writes (a ScopedSpan that was already open when the layer was
/// disabled finishes inert, and vice versa).
void Configure(const ObsOptions& options);

/// Current value of the runtime kill switch.
bool Enabled();

/// Monotonically increasing event count. All writes are relaxed atomics:
/// exact under concurrency, no ordering guarantees with other metrics.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus style): one atomic count per bucket
/// whose upper bound is given at construction, plus an implicit +Inf bucket,
/// a total count and a sum. Bucket bounds are immutable after registration;
/// GetHistogram keeps first-registration bounds and warns when a later call
/// passes different ones.
class Histogram {
 public:
  /// A sampled observation attached to one bucket, pointing back at the
  /// distributed trace that produced it (see obs/trace_context.h). Each
  /// bucket keeps its *largest* exemplar since the last Reset, so the
  /// highest non-empty bucket's exemplar is always the globally slowest
  /// traced observation — deterministic, which lets CI assert on it.
  struct Exemplar {
    double value = 0.0;
    uint64_t trace_id = 0;  ///< 0 = bucket has no exemplar
  };

  explicit Histogram(std::vector<double> upper_bounds);

  /// Records one observation (lock-free: a relaxed fetch_add per field).
  void Observe(double value);

  /// Records one observation and, when `exemplar_trace_id` is non-zero,
  /// offers it as the bucket's exemplar (max-value-wins, under a mutex the
  /// trace-id-free Observe never touches).
  void Observe(double value, uint64_t exemplar_trace_id);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  std::vector<uint64_t> bucket_counts() const;
  /// Per-bucket exemplars (same indexing as bucket_counts); empty if no
  /// traced observation was ever recorded.
  std::vector<Exemplar> exemplars() const;
  void Reset();

 private:
  std::vector<double> bounds_;  ///< sorted ascending
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  mutable std::mutex exemplar_mu_;
  std::vector<Exemplar> exemplars_;  ///< lazily sized buckets_.size()
};

/// Aggregate of every completed span (or recorded phase) with one path,
/// e.g. "bulk_dp/temp_convolution". Min/max are maintained with CAS loops.
class SpanStats {
 public:
  /// Folds `seconds` of work covering `count` units into the aggregate.
  void Record(double seconds, uint64_t count = 1);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const {
    return total_seconds_.load(std::memory_order_relaxed);
  }
  /// NaN before the first Record.
  double min_seconds() const;
  double max_seconds() const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> total_seconds_{0.0};
  std::atomic<bool> any_{false};
  std::atomic<double> min_seconds_{0.0};
  std::atomic<double> max_seconds_{0.0};
};

/// Default bucket bounds for latency histograms, in seconds: a 1-2-5 series
/// from 1 microsecond to 10 seconds.
const std::vector<double>& DefaultLatencyBuckets();

/// Escapes a Prometheus label value per the text exposition format:
/// `\` → `\\`, `"` → `\"`, newline → `\n`.
std::string PromLabelValueEscape(const std::string& value);

/// Canonical registry key for a labeled series: `name{k="v",...}` with label
/// keys sanitized to the Prometheus label charset ([a-zA-Z_][a-zA-Z0-9_]*,
/// other bytes become '_'), emitted in sorted key order, and values escaped
/// with PromLabelValueEscape. With no labels, returns `name` unchanged.
///
/// This is how per-jurisdiction / per-worker / per-shard series are named:
///
///   registry.GetCounter(LabeledName("csp/requests_served",
///                                   {{"shard", "j3"}})).Increment();
///
/// The Prometheus exporter splits such keys at the first '{', groups every
/// series of the family under one # HELP/# TYPE header, and passes the label
/// block through verbatim; the JSON exporter keeps the whole key as the map
/// key. Distinct label sets are distinct metrics (distinct registrations).
std::string LabeledName(const std::string& name,
                        const std::map<std::string, std::string>& labels);

/// Immutable copy of every registered metric, taken under the registry lock;
/// what the exporters consume.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> upper_bounds;
    std::vector<uint64_t> bucket_counts;  ///< per-bucket; last is +Inf
    uint64_t count = 0;
    double sum = 0.0;
    /// Per-bucket exemplars (parallel to bucket_counts; trace id 0 = none).
    /// Empty vectors when the histogram never saw a traced observation.
    std::vector<double> exemplar_values;
    std::vector<uint64_t> exemplar_trace_ids;
  };
  struct SpanData {
    uint64_t count = 0;
    double total_seconds = 0.0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, SpanData> spans;
  /// Sliding-window telemetry and SLO states, filled by obs::FullSnapshot /
  /// WriteJsonFile when the window registry / SLO tracker are armed; empty
  /// (and omitted from exports) otherwise, so un-armed output is unchanged.
  WindowSnapshot windows;
  std::vector<SloState> slos;
};

/// Named registry of counters, gauges, histograms and span aggregates.
///
/// Get* calls are get-or-create under a mutex; the returned references stay
/// valid for the registry's lifetime (Reset zeroes values but never
/// deallocates), so hot paths should look a metric up once and reuse the
/// reference:
///
///   static obs::Counter& hits =
///       obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/hits");
///   hits.Increment();
///
/// Metric names use '/'-separated paths; exporters sanitize them per format.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all built-in instrumentation writes to.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `upper_bounds` empty means DefaultLatencyBuckets(). When the name is
  /// already registered the first registration's bounds win; passing
  /// explicitly different bounds logs a warning and increments
  /// "obs/histogram_bounds_mismatches" instead of silently diverging.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {});
  SpanStats& GetSpanStats(const std::string& path);

  /// Folds an already-measured duration into the span aggregate for `path`
  /// (the aggregated-phase alternative to ScopedSpan). No-op when disabled.
  void RecordSpan(const std::string& path, double seconds, uint64_t count = 1);

  /// Zeroes every registered metric. Registrations (names, bucket bounds)
  /// and previously returned references remain valid.
  void Reset();

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<SpanStats>> spans_;
};

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_METRICS_H_
