#ifndef PASA_OBS_TRACE_SINK_H_
#define PASA_OBS_TRACE_SINK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pasa {
namespace obs {

/// One timeline event. `ts_micros` is monotonic microseconds since the
/// sink was started; `tid` is a small sink-assigned thread id (Chrome
/// track), not the OS thread id.
struct TraceEvent {
  enum class Type : uint8_t { kBegin, kEnd, kInstant, kCounter };
  Type type = Type::kInstant;
  uint32_t tid = 0;
  double ts_micros = 0.0;
  std::string name;
  double value = 0.0;  ///< counter events only
  /// Distributed-trace identity (0 when the span ran without a trace
  /// context). Begin events carrying a trace id get args in the Chrome
  /// export; root spans additionally emit flow events (see
  /// ExportChromeTrace) so merged multi-process traces draw arrows across
  /// the socket.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// This span adopted its context from a remote peer: its begin event is
  /// the flow-finish end of the cross-process arrow.
  bool flow_in = false;
};

/// Lock-light, fixed-capacity timeline recorder behind every ScopedSpan
/// plus the TraceInstant/TraceCounter call sites. Recording one event is
/// one relaxed atomic load (active check), one fetch_add to claim a slot,
/// a plain write into the pre-allocated slot and a release store that
/// publishes it — no locks, no allocation beyond the event name string.
///
/// The buffer is bounded: once `capacity` events are recorded, further
/// events are counted in `dropped()` and discarded, so a forgotten
/// tracing session can never exhaust memory. Export keeps whatever fit.
///
/// Start/Stop reconfigure the buffer and are NOT safe to call while other
/// threads may be mid-Record; start tracing before spawning workers and
/// stop after joining them (what pasa_cli --trace-out does).
class TraceEventSink {
 public:
  TraceEventSink() = default;
  TraceEventSink(const TraceEventSink&) = delete;
  TraceEventSink& operator=(const TraceEventSink&) = delete;

  /// The process-wide sink every built-in instrumentation site feeds.
  static TraceEventSink& Global();

  static constexpr size_t kDefaultCapacity = 1 << 20;

  /// Clears the buffer, (re)allocates `capacity` slots, zeroes the drop
  /// counter, rebases timestamps at "now" and enables recording.
  void Start(size_t capacity = kDefaultCapacity);

  /// Disables recording. The buffer keeps its events for export.
  void Stop();

  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Records one event (no-op unless active). Thread-safe.
  void Record(TraceEvent::Type type, std::string_view name,
              double value = 0.0);

  /// Records a span begin/end stamped with its distributed-trace identity.
  /// Same cost profile as Record.
  void RecordSpanEvent(TraceEvent::Type type, std::string_view name,
                       uint64_t trace_id, uint64_t span_id,
                       uint64_t parent_span_id, bool flow_in);

  /// Wall-clock (system_clock) microseconds corresponding to ts_micros == 0,
  /// captured at Start(). Exported as "wallClockBaseMicros" so
  /// `pasa_cli trace-merge` can align traces from different processes onto
  /// one timeline. 0 until the sink has been started.
  uint64_t wall_base_micros() const { return wall_base_micros_; }

  /// Events discarded because the buffer was full.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Events successfully recorded so far.
  size_t size() const;
  size_t capacity() const { return slots_.size(); }

  /// Approximate bytes held by the ring's slot array (memory accounting,
  /// obs/mem.h). Event-name heap spill is not counted: the slots may be
  /// written concurrently, and span paths are short enough to stay inline.
  uint64_t ApproxBytes() const {
    return static_cast<uint64_t>(slots_.size()) * sizeof(Slot);
  }

  /// Labels the calling thread's track in the exported trace (e.g.
  /// "pasa-worker-3"). Safe to call whether or not tracing is active;
  /// names persist across Start/Stop so long-lived pools register once.
  void SetCurrentThreadName(std::string name);

  /// Snapshot of the published events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Serializes the buffer as a Chrome trace_event JSON object:
  ///
  ///   { "displayTimeUnit": "ms",
  ///     "droppedEventCount": 0,
  ///     "traceEvents": [
  ///       {"ph":"M","pid":1,"tid":2,"name":"thread_name",
  ///        "args":{"name":"pasa-worker-1"}},
  ///       {"ph":"B","pid":1,"tid":2,"ts":12.5,"cat":"pasa","name":"bulk_dp"},
  ///       {"ph":"E","pid":1,"tid":2,"ts":80.0,"cat":"pasa","name":"bulk_dp"},
  ///       {"ph":"i","pid":1,"tid":2,"ts":40.0,"cat":"pasa","name":"rebuild",
  ///        "s":"t"},
  ///       {"ph":"C","pid":1,"tid":2,"ts":41.0,"cat":"pasa","name":"moves",
  ///        "args":{"value":128}} ] }
  ///
  /// loadable directly in Perfetto / chrome://tracing.
  std::string ExportChromeTrace() const;

  /// Writes ExportChromeTrace() to `path`, creating missing parent
  /// directories.
  Status WriteChromeTraceFile(const std::string& path) const;

 private:
  struct Slot {
    std::atomic<bool> ready{false};
    TraceEvent event;
  };

  uint32_t CurrentThreadId();
  /// Claims and pre-fills the next slot (type/tid/ts/name, identity fields
  /// zeroed); nullptr when the buffer is full (the drop was counted). The
  /// caller fills the rest and publishes via slot->ready.
  Slot* ClaimSlot(TraceEvent::Type type, std::string_view name);

  std::atomic<bool> active_{false};
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint32_t> next_tid_{0};
  std::vector<Slot> slots_;
  std::chrono::steady_clock::time_point base_;
  uint64_t wall_base_micros_ = 0;
  mutable std::mutex names_mu_;
  std::map<uint32_t, std::string> thread_names_;
};

/// Marks a point in time on the calling thread's track (e.g. a snapshot
/// rebuild decision). No-op unless the global sink is active.
inline void TraceInstant(std::string_view name) {
  TraceEventSink& sink = TraceEventSink::Global();
  if (sink.active()) sink.Record(TraceEvent::Type::kInstant, name);
}

/// Plots `value` over time under `name` in the trace viewer's counter
/// track. No-op unless the global sink is active.
inline void TraceCounter(std::string_view name, double value) {
  TraceEventSink& sink = TraceEventSink::Global();
  if (sink.active()) sink.Record(TraceEvent::Type::kCounter, name, value);
}

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_TRACE_SINK_H_
