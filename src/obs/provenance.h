#ifndef PASA_OBS_PROVENANCE_H_
#define PASA_OBS_PROVENANCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace pasa {
namespace obs {

/// How one request left the serving path.
enum class RequestOutcome : uint8_t {
  kServed = 0,    ///< fresh answer (cache hit or provider fetch)
  kDegraded = 1,  ///< served stale from the cache while the provider was down
  kFailed = 2,    ///< provider down and no fallback: the request was lost
  kRejected = 3,  ///< invalid w.r.t. the current snapshot (client error)
};

/// Short stable name ("served", "degraded", "failed", "rejected").
const char* RequestOutcomeName(RequestOutcome outcome);

/// Inverse of RequestOutcomeName; InvalidArgument on anything else.
Result<RequestOutcome> ParseRequestOutcome(std::string_view name);

/// Everything needed to reconstruct one request's cloak decision and its
/// trip through the serving path after the fact: which policy-tree node
/// cloaked the sender and why it is k-anonymous (group size, C(m) summary),
/// plus how the LBS hop went (cache, retries, breaker, fault fires) and
/// where the latency was spent. Cumulative metrics answer "how is serving
/// doing"; a ProvenanceRecord answers "why did request #4217 get THIS
/// cloak, and was it degraded".
///
/// Serialized as one JSONL object per record (`pasa_cli --audit-out`), with
/// doubles printed exactly (%.17g) so a written audit file parses back
/// field-for-field equal.
struct ProvenanceRecord {
  // Identity. rid is 0 for requests rejected before a cloak was assigned.
  int64_t rid = 0;
  int64_t sender = 0;
  RequestOutcome outcome = RequestOutcome::kRejected;
  std::string status = "OK";  ///< final StatusCode name
  /// Distributed trace id of the request (see obs/trace_context.h); 0 when
  /// the request was not traced. Serialized as a 16-char lowercase hex
  /// string in JSONL so offline joins against the loadgen latency log and
  /// the merged Perfetto timeline need no 64-bit-precision JSON parsing.
  uint64_t trace_id = 0;

  // The cloak decision. The cloak rectangle is stored as raw coordinates so
  // pasa_obs stays dependency-free; callers copy from geo::Rect.
  int32_t k = 0;
  int64_t cloak_x1 = 0;
  int64_t cloak_y1 = 0;
  int64_t cloak_x2 = 0;
  int64_t cloak_y2 = 0;
  int64_t cloak_area = 0;
  int32_t policy_node = -1;    ///< cloaking tree node id
  std::string tree_path;       ///< root-to-node turns, e.g. "r.0.1"
  int32_t node_depth = -1;
  uint64_t group_size = 0;     ///< candidate senders sharing this cloak
  uint64_t passed_up = 0;      ///< C(node): locations passed above the node

  // The LBS hop.
  bool cache_hit = false;
  bool stale_fallback = false;     ///< degraded: overlapping cached answer
  uint32_t lbs_attempts = 0;
  uint32_t lbs_retries = 0;
  bool breaker_rejected = false;   ///< failed fast at the open breaker
  bool deadline_exceeded = false;
  double lbs_simulated_micros = 0.0;  ///< injected latency + backoff consumed
  /// Injection points that fired while serving this request, with fire
  /// counts; kept sorted by point name (see AddFaultFire).
  std::vector<std::pair<std::string, uint32_t>> fault_fires;

  // Per-phase latency breakdown, wall seconds.
  double total_seconds = 0.0;
  double cloak_seconds = 0.0;  ///< validate + policy lookup
  double lbs_seconds = 0.0;    ///< cache + resilient fetch

  // Network front-end phases (zero for in-process requests): wire decode,
  // time spent queued behind admission control, and response encode+write.
  double net_decode_seconds = 0.0;
  double net_queue_seconds = 0.0;
  double net_encode_seconds = 0.0;

  friend bool operator==(const ProvenanceRecord& a,
                         const ProvenanceRecord& b) = default;
};

/// Counts one fire of `point` on the record, keeping fault_fires sorted by
/// point name (which JSON-object round-trips preserve).
void AddFaultFire(ProvenanceRecord* record, std::string_view point);

/// One JSONL line (no trailing newline). Doubles use %.17g, so parsing the
/// line back yields bit-identical values.
std::string ProvenanceToJsonl(const ProvenanceRecord& record);

/// Parses one record from a parsed JSON object. Unknown members are
/// ignored; missing members keep their defaults; a malformed `outcome` is
/// InvalidArgument.
Result<ProvenanceRecord> ProvenanceFromJson(const json::Value& value);

/// Parses a whole JSONL audit document (blank lines skipped).
Result<std::vector<ProvenanceRecord>> ParseProvenanceJsonl(
    std::string_view text);

/// Reads and parses `path`; NotFound when the file cannot be read.
Result<std::vector<ProvenanceRecord>> ReadProvenanceJsonlFile(
    const std::string& path);

/// Bounded ring of the most recent ProvenanceRecords, in the spirit of the
/// TraceEventSink but overwrite-oldest instead of drop-newest (an audit
/// wants the freshest requests). Disabled by default; the serving path's
/// only disarmed cost is one relaxed load in ScopedProvenanceRecord plus
/// null-pointer checks at annotation sites (gated by
/// bench_provenance_overhead). Appends serialize on a mutex — the critical
/// section is one vector-slot move, so the armed path stays lock-light and
/// TSan-clean.
class ProvenanceRing {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  /// The process-wide ring (armed by `pasa_cli --audit-out`).
  static ProvenanceRing& Global();

  ProvenanceRing();
  ~ProvenanceRing();
  ProvenanceRing(const ProvenanceRing&) = delete;
  ProvenanceRing& operator=(const ProvenanceRing&) = delete;

  /// Clears the ring and starts recording, keeping the most recent
  /// `capacity` records.
  void Enable(size_t capacity = kDefaultCapacity);

  /// Stops recording; the collected records stay readable.
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Discards all records (capacity is kept).
  void Clear();

  /// Stores one record, overwriting the oldest when full. No-op while
  /// disabled. When streaming is armed, also writes the record's JSONL
  /// line to the stream before it can be overwritten.
  void Append(ProvenanceRecord record);

  /// Arms append-on-record streaming: every Append from now on writes its
  /// JSONL line straight to `path` (parent directories created, file
  /// truncated), so long runs keep records the ring has overwritten.
  /// NotFound when the file cannot be opened.
  Status StreamTo(const std::string& path);

  /// Flushes and closes the stream; the ring keeps recording.
  void StopStreaming();

  bool streaming() const;
  /// Records written to the stream since StreamTo.
  uint64_t streamed() const;

  size_t size() const;
  size_t capacity() const;
  /// Total records ever appended since Enable/Clear, including overwritten.
  uint64_t total_appended() const;
  uint64_t overwritten() const;

  /// The retained records, oldest first.
  std::vector<ProvenanceRecord> Records() const;

  /// Approximate heap bytes held by the ring: the record array plus every
  /// retained record's string payloads (memory accounting, obs/mem.h).
  uint64_t ApproxBytes() const;

  /// Writes the retained records as JSONL (creating parent directories).
  Status WriteJsonlFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::vector<ProvenanceRecord> ring_;  ///< grows to capacity_, then wraps
  size_t capacity_ = kDefaultCapacity;
  uint64_t appended_ = 0;
  /// Append-on-record JSONL sink (pimpl'd so this header stays stream-free).
  struct Stream;
  std::unique_ptr<Stream> stream_;
  uint64_t streamed_ = 0;
};

/// The record the current thread is building, or nullptr when no
/// ScopedProvenanceRecord is open (or the ring is disabled). Lower layers
/// (Anonymizer, CachingLbsFrontend, ResilientLbsClient) annotate through
/// this instead of threading a record through every signature:
///
///   if (obs::ProvenanceRecord* p = obs::CurrentProvenance()) {
///     p->cache_hit = true;
///   }
ProvenanceRecord* CurrentProvenance();

/// RAII per-request record: opened by a top-level serving entry point
/// (CspServer::HandleRequest, the CLI's sampled-request loop), exposed to
/// nested layers via CurrentProvenance(), stamped with total_seconds and
/// appended to the global ring on destruction. Inert (and free apart from
/// one relaxed load) while the ring is disabled; a scope opened inside
/// another scope is also inert, so the outermost entry point wins.
class ScopedProvenanceRecord {
 public:
  ScopedProvenanceRecord();
  ~ScopedProvenanceRecord();

  ScopedProvenanceRecord(const ScopedProvenanceRecord&) = delete;
  ScopedProvenanceRecord& operator=(const ScopedProvenanceRecord&) = delete;

  bool active() const { return active_; }
  /// The record being built, or nullptr when inert.
  ProvenanceRecord* get() { return active_ ? &record_ : nullptr; }

 private:
  bool active_;
  ProvenanceRecord record_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_PROVENANCE_H_
