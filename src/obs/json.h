#ifndef PASA_OBS_JSON_H_
#define PASA_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pasa {
namespace obs {
namespace json {

/// Minimal immutable JSON document model, just enough to read back the
/// files this library writes (metrics snapshots, Chrome traces,
/// BENCH_*.json) without an external dependency. Numbers are doubles;
/// object keys are kept sorted (std::map), so re-serialization of our own
/// exports is deterministic but key order of foreign documents is not
/// preserved.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  static Value MakeBool(bool b);
  static Value MakeNumber(double n);
  static Value MakeString(std::string s);
  static Value MakeArray(std::vector<Value> items);
  static Value MakeObject(std::map<std::string, Value> members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one returns a zero value rather
  /// than aborting, so lookups over untrusted documents stay total.
  bool boolean() const { return is_bool() && bool_; }
  double number() const { return is_number() ? number_ : 0.0; }
  const std::string& str() const;
  const std::vector<Value>& array() const;
  const std::map<std::string, Value>& object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document (with optional surrounding whitespace).
/// Trailing non-whitespace after the document is an error. Standard JSON
/// only: no comments, no trailing commas, no bare NaN/Infinity.
Result<Value> Parse(std::string_view text);

/// Serializes a Value back to compact JSON (no insignificant whitespace).
/// Object keys come out in sorted order (the map's), so
/// Serialize(Parse(x)) is deterministic. Integral numbers within 2^53
/// print without a decimal point; NaN/Infinity degrade to 0 (JSON has no
/// spelling for them).
std::string Serialize(const Value& value);

}  // namespace json
}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_JSON_H_
