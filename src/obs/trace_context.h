#ifndef PASA_OBS_TRACE_CONTEXT_H_
#define PASA_OBS_TRACE_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pasa {
namespace obs {

/// Per-request distributed trace identity. A context is carried across the
/// wire (net wire v2 trace-context extension), installed in a thread-local
/// slot for the duration of one request, and consumed by every ScopedSpan
/// opened while it is active: each span allocates a span id, parents itself
/// under `span_id`, and advances the slot so nesting is tracked without the
/// spans knowing about each other.
///
/// `trace_id == 0` means "no context"; ids are never allocated as zero.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  ///< innermost open span; parent of the next child
  bool sampled = false;  ///< peer asked for this request to be recorded
  /// Adopted from a remote peer (decoded off the wire, not locally
  /// originated). The first span opened under a remote context emits a
  /// flow-finish event so the Chrome-trace exporter can draw the
  /// cross-process arrow; opening that span clears the flag.
  bool remote = false;

  bool valid() const { return trace_id != 0; }
};

/// Fresh process-unique ids: a SplitMix64 stream seeded from the wall clock
/// and pid at startup, so two processes on the same host do not collide.
uint64_t NewTraceId();
uint64_t NewSpanId();

/// Canonical text form of a trace/span id: 16 lowercase hex digits. Used in
/// trace args, exemplar labels, audit JSONL and the loadgen latency log so
/// offline joins work by exact string match.
std::string TraceIdHex(uint64_t id);
/// Parses TraceIdHex output (also accepts shorter hex strings); 0 on error.
uint64_t TraceIdFromHex(const std::string& hex);

/// The thread's current trace, or nullptr when none is active. One
/// thread-local read — this is the disarmed fast path ScopedSpan takes.
TraceContext* MutableCurrentTraceContext();

/// Read-only view; returns a zero (invalid) context when none is active.
const TraceContext& CurrentTraceContext();

/// RAII: installs `ctx` as the thread's current trace for the scope and
/// restores whatever was active before on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// One completed span as captured for a tail trace: enough to rebuild the
/// request's span tree (parent links) with timings, without the full
/// TraceEventSink machinery.
struct CollectedSpan {
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 = root (or remote parent)
  std::string path;
  double start_micros = 0.0;  ///< relative to the collector being armed
  double duration_micros = 0.0;
};

/// Accumulates the spans of one request. Armed per request via
/// ScopedSpanCollector; every ScopedSpan that closes with a trace active
/// appends itself here.
struct SpanCollector {
  std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  std::vector<CollectedSpan> spans;
};

/// The thread's armed collector, or nullptr.
SpanCollector* CurrentSpanCollector();

/// RAII: arms `collector` for the scope (restoring the previous one on
/// destruction, so nested arming is safe).
class ScopedSpanCollector {
 public:
  explicit ScopedSpanCollector(SpanCollector* collector);
  ~ScopedSpanCollector();
  ScopedSpanCollector(const ScopedSpanCollector&) = delete;
  ScopedSpanCollector& operator=(const ScopedSpanCollector&) = delete;

 private:
  SpanCollector* saved_;
};

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_TRACE_CONTEXT_H_
