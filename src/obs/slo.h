#ifndef PASA_OBS_SLO_H_
#define PASA_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/window.h"

namespace pasa {
namespace obs {

/// Sentinel burn rate for a violated zero-tolerance objective (target 1.0
/// leaves no error budget, so any bad event means "infinite" burn). Kept
/// finite so JSON exports stay valid numbers.
inline constexpr double kInfiniteBurn = 1e9;

/// One declarative service level objective over the serving path.
///
/// Burn rate is the SRE convention: bad_fraction / (1 - target), i.e. how
/// many times faster than budgeted the error budget is being spent. A
/// multi-window alert fires only when BOTH the fast window (catches
/// sudden outages quickly) and the slow window (suppresses blips) burn at
/// `burn_alert_threshold` or faster, and resolves when either recovers.
struct SloObjective {
  enum class Kind : uint8_t {
    kAvailability = 0,    ///< good = request answered (fresh or degraded)
    kLatency = 1,         ///< good = latency <= latency_threshold_seconds
    kZeroViolations = 2,  ///< good = no violation; any bad event alerts
  };

  std::string name;
  Kind kind = Kind::kAvailability;
  /// Fraction of events that must be good (e.g. 0.999). A kZeroViolations
  /// objective treats any target as 1.0.
  double target = 0.999;
  /// kLatency only: the "good" cutoff for one request.
  double latency_threshold_seconds = 0.005;
  uint64_t fast_window_micros = 5'000'000;
  uint64_t slow_window_micros = 60'000'000;
  double burn_alert_threshold = 14.0;
};

/// Short stable name ("availability", "latency", "zero_violations").
const char* SloKindName(SloObjective::Kind kind);

/// Inverse of SloKindName; InvalidArgument on anything else.
Result<SloObjective::Kind> ParseSloKind(std::string_view name);

/// Parses a list of objectives from a JSON config document:
///
///   {"objectives": [
///     {"name": "csp/serve_latency", "kind": "latency", "target": 0.99,
///      "latency_threshold_seconds": 0.005,
///      "fast_window_micros": 5000000, "slow_window_micros": 60000000,
///      "burn_alert_threshold": 14.0}
///   ]}
///
/// Only "name" and "kind" are required; other members default as in
/// SloObjective. Unknown kinds, targets outside (0, 1], non-positive
/// windows/thresholds, duplicate names and malformed JSON are all
/// InvalidArgument.
Result<std::vector<SloObjective>> SloObjectivesFromJson(
    std::string_view text);

/// Reads and parses `path`. NotFound when the file cannot be read.
Result<std::vector<SloObjective>> SloObjectivesFromJsonFile(
    const std::string& path);

/// Well-known objective names for the CSP serving path.
inline constexpr char kSloAvailability[] = "csp/availability";
inline constexpr char kSloServeLatency[] = "csp/serve_latency";
inline constexpr char kSloAnonymity[] = "csp/anonymity";

/// The three objectives CspServer registers by default: 99.9% availability,
/// p99-style latency (99% of requests under 5ms wall), and zero anonymity
/// violations (every accepted request cloaked with group size >= k).
std::vector<SloObjective> DefaultServingObjectives();

/// Evaluated state of one objective at a point in simulated time.
struct SloState {
  std::string name;
  SloObjective::Kind kind = SloObjective::Kind::kAvailability;
  double target = 0.999;
  bool alerting = false;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  uint64_t fast_good = 0;
  uint64_t fast_total = 0;
  uint64_t slow_good = 0;
  uint64_t slow_total = 0;
  uint64_t alerts_fired = 0;
  uint64_t alerts_resolved = 0;
};

/// Tracks every configured objective against the simulated clock.
/// Disabled by default; Record/RecordLatency are no-ops (one relaxed load)
/// until Enable(), so the disarmed serving path stays near-free (gated by
/// bench_provenance_overhead). Alert transitions are logged ("slo"
/// component), emitted as TraceInstants ("slo/<name>/fired|resolved") and
/// counted in the MetricsRegistry ("slo/alerts_fired|resolved").
class SloTracker {
 public:
  SloTracker() = default;
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// The process-wide tracker (armed by `pasa_cli serve` / `--audit-out`).
  static SloTracker& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Replaces all objectives and discards window/alert state.
  void Configure(std::vector<SloObjective> objectives);

  /// Adds `objective` unless one with the same name exists (so CspServer
  /// can install defaults without clobbering a caller's Configure).
  void EnsureObjective(const SloObjective& objective);

  /// Records one good/bad event for `name` at simulated time `now_micros`
  /// and processes any alert transition. Unknown names and the disabled
  /// state are no-ops.
  void Record(const std::string& name, bool good, uint64_t now_micros);

  /// Records one latency sample for a kLatency objective: good iff
  /// `seconds` <= its latency_threshold_seconds.
  void RecordLatency(const std::string& name, double seconds,
                     uint64_t now_micros);

  /// Evaluates every objective at `now_micros`, processing transitions
  /// (e.g. a resolve caused purely by the window sliding), sorted by name.
  std::vector<SloState> Evaluate(uint64_t now_micros);

  /// Discards window contents and alert state; objectives survive.
  void Reset();

 private:
  struct Entry {
    explicit Entry(const SloObjective& o)
        : objective(o),
          fast(o.fast_window_micros),
          slow(o.slow_window_micros) {}
    SloObjective objective;
    SlidingWindowRate fast;
    SlidingWindowRate slow;
    bool alerting = false;
    uint64_t fired = 0;
    uint64_t resolved = 0;
  };

  /// Evaluates `entry` at `now_micros` and flips its alert state;
  /// returns the state. Caller holds mu_; log/trace/counter emission for
  /// any transition happens after the lock is released (via *transition).
  SloState EvaluateEntryLocked(Entry* entry, uint64_t now_micros,
                               int* transition);

  void EmitTransition(const std::string& name, int transition);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_SLO_H_
