#include "obs/window.h"

#include <algorithm>

#include "obs/metrics.h"

namespace pasa {
namespace obs {
namespace {

uint64_t SliceMicros(uint64_t window_micros) {
  return std::max<uint64_t>(1, window_micros / kWindowSlices);
}

/// First slice index still inside the window that ends at `current`.
uint64_t OldestValidSlice(uint64_t current) {
  return current >= kWindowSlices - 1 ? current - (kWindowSlices - 1) : 0;
}

}  // namespace

SimClock& SimClock::Global() {
  static SimClock* clock = new SimClock();
  return *clock;
}

SlidingWindowHistogram::SlidingWindowHistogram(
    std::vector<double> upper_bounds, uint64_t window_micros)
    : bounds_(upper_bounds.empty() ? DefaultLatencyBuckets()
                                   : std::move(upper_bounds)),
      window_micros_(std::max<uint64_t>(1, window_micros)),
      slice_micros_(SliceMicros(window_micros_)),
      slices_(kWindowSlices) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Slice& slice : slices_) slice.buckets.resize(bounds_.size() + 1, 0);
}

void SlidingWindowHistogram::Observe(double value, uint64_t now_micros) {
  const uint64_t index = now_micros / slice_micros_;
  std::lock_guard<std::mutex> lock(mu_);
  Slice& slice = slices_[index % kWindowSlices];
  if (slice.index != index) {
    // The slot's previous tenancy fell out of the window; reclaim it.
    slice.index = index;
    std::fill(slice.buckets.begin(), slice.buckets.end(), 0);
    slice.count = 0;
    slice.sum = 0.0;
  }
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  ++slice.buckets[bucket];
  ++slice.count;
  slice.sum += value;
}

SlidingWindowHistogram::Stats SlidingWindowHistogram::Snapshot(
    uint64_t now_micros) const {
  const uint64_t current = now_micros / slice_micros_;
  const uint64_t oldest = OldestValidSlice(current);
  Stats stats;
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slice& slice : slices_) {
      if (slice.index == UINT64_MAX || slice.index < oldest ||
          slice.index > current) {
        continue;
      }
      for (size_t i = 0; i < merged.size(); ++i) merged[i] += slice.buckets[i];
      stats.count += slice.count;
      stats.sum += slice.sum;
    }
  }
  // Quantiles by linear interpolation inside the winning bucket; the +Inf
  // bucket has no finite upper edge, so it reports the largest bound.
  auto quantile = [&](double q) -> double {
    if (stats.count == 0 || bounds_.empty()) return 0.0;
    const double target = q * static_cast<double>(stats.count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
      const uint64_t before = cumulative;
      cumulative += merged[i];
      if (static_cast<double>(cumulative) < target) continue;
      if (i >= bounds_.size()) return bounds_.back();
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      if (merged[i] == 0) return hi;
      const double fraction = (target - static_cast<double>(before)) /
                              static_cast<double>(merged[i]);
      return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    }
    return bounds_.back();
  };
  stats.p50 = quantile(0.50);
  stats.p95 = quantile(0.95);
  stats.p99 = quantile(0.99);
  return stats;
}

void SlidingWindowHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slice& slice : slices_) {
    slice.index = UINT64_MAX;
    std::fill(slice.buckets.begin(), slice.buckets.end(), 0);
    slice.count = 0;
    slice.sum = 0.0;
  }
}

SlidingWindowRate::SlidingWindowRate(uint64_t window_micros)
    : window_micros_(std::max<uint64_t>(1, window_micros)),
      slice_micros_(SliceMicros(window_micros_)),
      slices_(kWindowSlices) {}

void SlidingWindowRate::Record(bool good, uint64_t now_micros) {
  const uint64_t index = now_micros / slice_micros_;
  std::lock_guard<std::mutex> lock(mu_);
  Slice& slice = slices_[index % kWindowSlices];
  if (slice.index != index) {
    slice.index = index;
    slice.good = 0;
    slice.total = 0;
  }
  if (good) ++slice.good;
  ++slice.total;
}

SlidingWindowRate::Stats SlidingWindowRate::Snapshot(
    uint64_t now_micros) const {
  const uint64_t current = now_micros / slice_micros_;
  const uint64_t oldest = OldestValidSlice(current);
  Stats stats;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slice& slice : slices_) {
    if (slice.index == UINT64_MAX || slice.index < oldest ||
        slice.index > current) {
      continue;
    }
    stats.good += slice.good;
    stats.total += slice.total;
  }
  stats.rate = stats.total == 0 ? 0.0
                                : static_cast<double>(stats.good) /
                                      static_cast<double>(stats.total);
  return stats;
}

void SlidingWindowRate::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slice& slice : slices_) {
    slice.index = UINT64_MAX;
    slice.good = 0;
    slice.total = 0;
  }
}

WindowRegistry& WindowRegistry::Global() {
  static WindowRegistry* registry = new WindowRegistry();
  return *registry;
}

SlidingWindowHistogram& WindowRegistry::GetHistogram(
    const std::string& name, std::vector<double> upper_bounds,
    uint64_t window_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<SlidingWindowHistogram>(std::move(upper_bounds),
                                                    window_micros);
  }
  return *slot;
}

SlidingWindowRate& WindowRegistry::GetRate(const std::string& name,
                                           uint64_t window_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = rates_[name];
  if (!slot) slot = std::make_unique<SlidingWindowRate>(window_micros);
  return *slot;
}

WindowSnapshot WindowRegistry::Snapshot(uint64_t now_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowSnapshot snapshot;
  for (const auto& [name, h] : histograms_) {
    const SlidingWindowHistogram::Stats stats = h->Snapshot(now_micros);
    WindowSnapshot::HistogramData data;
    data.window_micros = h->window_micros();
    data.count = stats.count;
    data.sum = stats.sum;
    data.p50 = stats.p50;
    data.p95 = stats.p95;
    data.p99 = stats.p99;
    snapshot.histograms[name] = data;
  }
  for (const auto& [name, r] : rates_) {
    const SlidingWindowRate::Stats stats = r->Snapshot(now_micros);
    WindowSnapshot::RateData data;
    data.window_micros = r->window_micros();
    data.good = stats.good;
    data.total = stats.total;
    data.rate = stats.rate;
    snapshot.rates[name] = data;
  }
  return snapshot;
}

void WindowRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, r] : rates_) r->Reset();
}

}  // namespace obs
}  // namespace pasa
