#include "obs/profile.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "obs/mem.h"
#include "obs/metrics.h"

namespace pasa {
namespace obs {
namespace {

// Folds a '/'-joined span path into ';'-joined flamegraph frames.
std::string FoldPath(const std::string& path) {
  std::string folded = path;
  std::replace(folded.begin(), folded.end(), '/', ';');
  return folded;
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

}  // namespace

// Owns this thread's registration: created lazily by the first armed span
// transition on the thread, retired (so the sampler stops seeing a stale
// path) when the thread exits.
class ProfilerThreadHook {
 public:
  ~ProfilerThreadHook() {
    if (slot_ != nullptr) Profiler::Global().UnregisterThread(slot_);
  }

  Profiler::Slot* slot() {
    if (slot_ == nullptr) slot_ = Profiler::Global().RegisterThread();
    return slot_;
  }

 private:
  Profiler::Slot* slot_ = nullptr;
};

namespace {
thread_local ProfilerThreadHook tls_profiler_hook;
}  // namespace

Profiler& Profiler::Global() {
  // Leaked on purpose: thread_local ProfilerThreadHook destructors (which
  // call UnregisterThread) may run during process teardown, after
  // function-local statics would have been destroyed.
  static Profiler* profiler = new Profiler();
  return *profiler;
}

uint64_t Profiler::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Profiler::Start(const ProfilerOptions& options) {
  if (armed_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("profiler already armed");
  }
  if (options.capacity == 0) {
    return Status::InvalidArgument("profiler capacity must be positive");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_capacity_ != options.capacity) {
      // Keep as many of the most recent retained samples as still fit.
      std::vector<Sample> kept;
      kept.reserve(std::min(options.capacity, ring_.size()));
      SnapshotLocked(&kept);
      if (kept.size() > options.capacity) {
        kept.erase(kept.begin(),
                   kept.begin() +
                       static_cast<long>(kept.size() - options.capacity));
      }
      ring_ = std::move(kept);
      ring_capacity_ = options.capacity;
      ring_wrapped_ = ring_.size() == ring_capacity_;
      ring_next_ = ring_wrapped_ ? 0 : ring_.size();
      ring_.reserve(ring_capacity_);
    }
  }
  hz_ = options.hz;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = false;
  }
  armed_.store(true, std::memory_order_relaxed);
  if (hz_ > 0) sampler_ = std::thread([this] { SamplerLoop(); });
  return Status::Ok();
}

void Profiler::Stop() {
  if (!armed_.load(std::memory_order_relaxed)) return;
  armed_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void Profiler::SamplerLoop() {
  const auto period = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / hz_));
  auto next = std::chrono::steady_clock::now() + period;
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    if (stop_cv_.wait_until(lock, next, [this] { return stop_requested_; })) {
      break;
    }
    next += period;
    lock.unlock();
    SampleOnce(NowMicros());
    lock.lock();
  }
}

Profiler::Slot* Profiler::RegisterThread() {
  auto slot = std::make_shared<Slot>();
  Slot* raw = slot.get();
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(std::move(slot));
  return raw;
}

void Profiler::UnregisterThread(Slot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].get() == slot) {
      slots_.erase(slots_.begin() + static_cast<long>(i));
      return;
    }
  }
}

size_t Profiler::SampleOnce(uint64_t now_micros) {
  size_t recorded = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_capacity_ == 0) {
      ring_capacity_ = ProfilerOptions{}.capacity;
      ring_.reserve(ring_capacity_);
    }
    for (const auto& slot : slots_) {
      std::string path;
      {
        std::lock_guard<std::mutex> slot_lock(slot->mu);
        path = slot->path;
      }
      if (path.empty()) continue;
      Sample sample{now_micros, std::move(path)};
      if (ring_.size() < ring_capacity_) {
        ring_.push_back(std::move(sample));
        ring_next_ = ring_.size() % ring_capacity_;
      } else {
        ring_[ring_next_] = std::move(sample);
        ring_next_ = (ring_next_ + 1) % ring_capacity_;
        ring_wrapped_ = true;
      }
      ++recorded;
    }
  }
  if (recorded > 0) {
    samples_taken_.fetch_add(recorded, std::memory_order_relaxed);
    if (Enabled()) {
      MetricsRegistry::Global()
          .GetCounter("obs/profiler/samples")
          .Increment(recorded);
    }
  }
  return recorded;
}

void Profiler::SnapshotLocked(std::vector<Sample>* out) const {
  // Oldest-first: the wrapped region starts at ring_next_.
  if (ring_wrapped_) {
    for (size_t i = ring_next_; i < ring_.size(); ++i) out->push_back(ring_[i]);
    for (size_t i = 0; i < ring_next_; ++i) out->push_back(ring_[i]);
  } else {
    for (const Sample& sample : ring_) out->push_back(sample);
  }
}

size_t Profiler::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Profiler::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes =
      static_cast<uint64_t>(ring_.capacity()) * sizeof(Sample) +
      static_cast<uint64_t>(slots_.capacity()) * sizeof(slots_[0]);
  for (const Sample& sample : ring_) {
    bytes += StringApproxBytes(sample.path);
  }
  bytes += static_cast<uint64_t>(slots_.size()) * sizeof(Slot);
  return bytes;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_next_ = 0;
  ring_wrapped_ = false;
}

std::string Profiler::CollapsedSince(uint64_t min_micros) const {
  std::vector<Sample> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples.reserve(ring_.size());
    SnapshotLocked(&samples);
  }
  std::map<std::string, uint64_t> stacks;
  for (const Sample& sample : samples) {
    if (sample.micros < min_micros) continue;
    ++stacks[FoldPath(sample.path)];
  }
  std::string out;
  for (const auto& [stack, count] : stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string Profiler::Collapsed(double seconds) const {
  if (seconds <= 0) return CollapsedSince(0);
  const uint64_t now = NowMicros();
  const uint64_t span = static_cast<uint64_t>(seconds * 1e6);
  return CollapsedSince(span >= now ? 0 : now - span);
}

std::string Profiler::SelfTimeTableSince(uint64_t min_micros) const {
  std::vector<Sample> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples.reserve(ring_.size());
    SnapshotLocked(&samples);
  }
  struct FrameStats {
    uint64_t self = 0;
    uint64_t total = 0;
  };
  std::map<std::string, FrameStats> frames;
  uint64_t considered = 0;
  for (const Sample& sample : samples) {
    if (sample.micros < min_micros) continue;
    ++considered;
    // Each distinct frame on the stack gets one `total` tick; the
    // innermost frame also gets the `self` tick.
    std::set<std::string> on_stack;
    size_t begin = 0;
    std::string last;
    while (begin <= sample.path.size()) {
      size_t end = sample.path.find('/', begin);
      if (end == std::string::npos) end = sample.path.size();
      last = sample.path.substr(begin, end - begin);
      if (!last.empty()) on_stack.insert(last);
      begin = end + 1;
    }
    for (const std::string& frame : on_stack) ++frames[frame].total;
    if (!last.empty()) ++frames[last].self;
  }
  std::vector<std::pair<std::string, FrameStats>> rows(frames.begin(),
                                                       frames.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    return a.first < b.first;
  });
  std::string out;
  AppendF(&out, "profile: %llu samples\n",
          static_cast<unsigned long long>(considered));
  AppendF(&out, "%-40s %10s %10s %8s\n", "frame", "self", "total", "self%");
  for (const auto& [frame, stats] : rows) {
    const double pct =
        considered == 0 ? 0.0
                        : 100.0 * static_cast<double>(stats.self) /
                              static_cast<double>(considered);
    AppendF(&out, "%-40s %10llu %10llu %7.1f%%\n", frame.c_str(),
            static_cast<unsigned long long>(stats.self),
            static_cast<unsigned long long>(stats.total), pct);
  }
  return out;
}

std::string Profiler::SelfTimeTable(double seconds) const {
  if (seconds <= 0) return SelfTimeTableSince(0);
  const uint64_t now = NowMicros();
  const uint64_t span = static_cast<uint64_t>(seconds * 1e6);
  return SelfTimeTableSince(span >= now ? 0 : now - span);
}

void ProfilerPublishPath(const std::string& path) {
  Profiler::Slot* slot = tls_profiler_hook.slot();
  std::lock_guard<std::mutex> lock(slot->mu);
  slot->path = path;
}

}  // namespace obs
}  // namespace pasa
