#include "obs/trace_context.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>

namespace pasa {
namespace obs {
namespace {

thread_local TraceContext tls_trace_context;       // trace_id == 0: inactive
thread_local SpanCollector* tls_collector = nullptr;
const TraceContext kNoContext;

// SplitMix64 finalizer: full-period mixing of a sequential counter, so ids
// from the same process never collide and ids from different processes
// collide only if their seeds do.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::atomic<uint64_t>& IdCounter() {
  static std::atomic<uint64_t> counter(
      Mix(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count()) ^
          (static_cast<uint64_t>(::getpid()) << 32)));
  return counter;
}

uint64_t NextId() {
  const uint64_t id =
      Mix(IdCounter().fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

}  // namespace

uint64_t NewTraceId() { return NextId(); }
uint64_t NewSpanId() { return NextId(); }

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

uint64_t TraceIdFromHex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  uint64_t id = 0;
  for (const char c : hex) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
    id = (id << 4) | digit;
  }
  return id;
}

TraceContext* MutableCurrentTraceContext() {
  return tls_trace_context.trace_id != 0 ? &tls_trace_context : nullptr;
}

const TraceContext& CurrentTraceContext() {
  return tls_trace_context.trace_id != 0 ? tls_trace_context : kNoContext;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : saved_(tls_trace_context) {
  tls_trace_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { tls_trace_context = saved_; }

SpanCollector* CurrentSpanCollector() { return tls_collector; }

ScopedSpanCollector::ScopedSpanCollector(SpanCollector* collector)
    : saved_(tls_collector) {
  tls_collector = collector;
}

ScopedSpanCollector::~ScopedSpanCollector() { tls_collector = saved_; }

}  // namespace obs
}  // namespace pasa
