#ifndef PASA_OBS_MEM_H_
#define PASA_OBS_MEM_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pasa {
namespace obs {

class MetricsRegistry;

/// One subsystem's live byte count. All writes are relaxed atomics, so the
/// counter is exact under concurrency but carries no ordering guarantees.
/// Two disciplines coexist, one per subsystem (never mixed on one counter):
///
///  - allocator-style: AccountingAllocator / ScopedAllocTracker call Add
///    with signed deltas as memory is acquired and released;
///  - snapshot-style: an owner's ReportMemory(MemoryAccountant&) calls Set
///    with the structure's ApproxBytes() when telemetry is refreshed.
///
/// Deltas are unconditional (never gated on the accountant being enabled)
/// so charge/release pairs always balance; reads clamp at zero anyway.
class MemCounter {
 public:
  void Add(int64_t delta) {
    bytes_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(uint64_t bytes) {
    bytes_.store(static_cast<int64_t>(bytes), std::memory_order_relaxed);
  }
  uint64_t bytes() const {
    const int64_t v = bytes_.load(std::memory_order_relaxed);
    return v < 0 ? 0 : static_cast<uint64_t>(v);
  }
  void Reset() { bytes_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> bytes_{0};
};

/// Lock-light per-subsystem memory accounting, the capacity sibling of
/// MetricsRegistry: get-or-create a MemCounter per subsystem name
/// ("csp/snapshot", "net/conn_buffers", ...) under a mutex taken only at
/// registration and snapshot time, never on the byte-charging path.
/// References returned by GetCounter stay valid for the accountant's
/// lifetime, so call sites cache them like metric counters.
///
/// Disabled by default, like every other obs layer: the serving-path hook
/// is `if (obs::MemoryAccounting()) { ... }` — one relaxed load — and
/// bench_mem_overhead gates the disarmed cost at 5%. Armed by
/// NetServer::Start, `pasa_cli memstats`, and the capacity benches.
class MemoryAccountant {
 public:
  MemoryAccountant() = default;
  MemoryAccountant(const MemoryAccountant&) = delete;
  MemoryAccountant& operator=(const MemoryAccountant&) = delete;

  /// The process-wide accountant every subsystem reports into.
  static MemoryAccountant& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Get-or-create; the reference stays valid forever.
  MemCounter& GetCounter(const std::string& subsystem);

  /// Current bytes per subsystem (every registered subsystem, including
  /// zero-byte ones, in sorted name order).
  std::map<std::string, uint64_t> Snapshot() const;
  uint64_t TotalBytes() const;

  /// Zeroes every counter; registrations and references survive (tests).
  void Reset();

  /// Writes one pasa_mem_bytes{subsystem="..."} gauge per subsystem plus
  /// the pasa_mem_total_bytes roll-up into `registry`, so the standard
  /// Prometheus/JSON exporters pick the accounting up with no extra
  /// plumbing. Gauge writes are gated on obs::Enabled() like all metrics.
  void PublishGauges(MetricsRegistry& registry) const;

  /// The GET /memory document:
  ///
  ///   { "total_bytes": N,
  ///     "users": U, "bytes_per_user": B,      // when users > 0
  ///     "subsystems": { "csp/snapshot": N1, ... } }
  std::string ExportJson(size_t users = 0) const;

  /// Human-readable table sorted by bytes descending (pasa_cli memstats).
  std::string SummaryTable() const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, std::unique_ptr<MemCounter>> counters_;
};

/// The disarmed hook: one relaxed atomic load.
inline bool MemoryAccounting() {
  return MemoryAccountant::Global().enabled();
}

/// RAII charge against a MemCounter for a buffer whose size changes over
/// its lifetime (a connection's output buffer, a decoder's backlog).
/// Update re-charges the delta against what is currently charged, so the
/// counter stays balanced even when the accountant is toggled mid-flight;
/// the destructor releases whatever is still charged. Move-only.
class ScopedAllocTracker {
 public:
  ScopedAllocTracker() = default;
  explicit ScopedAllocTracker(MemCounter* counter, uint64_t bytes = 0)
      : counter_(counter) {
    Update(bytes);
  }
  ~ScopedAllocTracker() { Release(); }

  ScopedAllocTracker(ScopedAllocTracker&& other) noexcept
      : counter_(other.counter_), charged_(other.charged_) {
    other.counter_ = nullptr;
    other.charged_ = 0;
  }
  ScopedAllocTracker& operator=(ScopedAllocTracker&& other) noexcept {
    if (this != &other) {
      Release();
      counter_ = other.counter_;
      charged_ = other.charged_;
      other.counter_ = nullptr;
      other.charged_ = 0;
    }
    return *this;
  }
  ScopedAllocTracker(const ScopedAllocTracker&) = delete;
  ScopedAllocTracker& operator=(const ScopedAllocTracker&) = delete;

  /// Charges `bytes` in place of whatever was charged before.
  void Update(uint64_t bytes) {
    if (counter_ == nullptr || bytes == charged_) return;
    counter_->Add(static_cast<int64_t>(bytes) -
                  static_cast<int64_t>(charged_));
    charged_ = bytes;
  }
  /// Returns the charge to the counter; the tracker stays usable.
  void Release() { Update(0); }

  uint64_t charged() const { return charged_; }

 private:
  MemCounter* counter_ = nullptr;
  uint64_t charged_ = 0;
};

/// Minimal std-compatible allocator charging every allocation to a
/// MemCounter, so a container's live heap usage tracks itself:
///
///   auto& c = obs::MemoryAccountant::Global().GetCounter("net/pending");
///   std::deque<Pending, obs::AccountingAllocator<Pending>> q{
///       obs::AccountingAllocator<Pending>(&c)};
///
/// Charges are unconditional (see MemCounter), so allocate/deallocate
/// always balance regardless of when the accountant was enabled. A
/// default-constructed allocator charges nothing.
template <typename T>
class AccountingAllocator {
 public:
  using value_type = T;

  AccountingAllocator() noexcept = default;
  explicit AccountingAllocator(MemCounter* counter) noexcept
      : counter_(counter) {}
  template <typename U>
  AccountingAllocator(const AccountingAllocator<U>& other) noexcept
      : counter_(other.counter()) {}

  T* allocate(std::size_t n) {
    if (counter_ != nullptr) {
      counter_->Add(static_cast<int64_t>(n * sizeof(T)));
    }
    return std::allocator<T>().allocate(n);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    std::allocator<T>().deallocate(p, n);
    if (counter_ != nullptr) {
      counter_->Add(-static_cast<int64_t>(n * sizeof(T)));
    }
  }

  MemCounter* counter() const { return counter_; }

  template <typename U>
  bool operator==(const AccountingAllocator<U>& other) const {
    return counter_ == other.counter();
  }

 private:
  MemCounter* counter_ = nullptr;
};

/// ApproxBytes building blocks for the hand-rolled reporters: heap bytes
/// held by common containers (capacity-based — what the allocator actually
/// reserved, not just what is in use).
template <typename T>
uint64_t VectorApproxBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

/// Heap bytes of a std::string: zero while the small-string buffer holds
/// it, capacity + NUL once it spilled to the heap.
inline uint64_t StringApproxBytes(const std::string& s) {
  constexpr size_t kSsoCapacity = 15;  // libstdc++/libc++ inline buffer
  return s.capacity() <= kSsoCapacity ? 0 : s.capacity() + 1;
}

/// Reports the obs stack's own long-lived rings — provenance, trace-event
/// sink, tail traces, profiler — into `accountant` under obs/* subsystem
/// names. Every structure exposes ApproxBytes(); this is their shared
/// ReportMemory.
void ReportObsMemory(MemoryAccountant& accountant);

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_MEM_H_
