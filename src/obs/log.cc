#include "obs/log.h"

#include <cctype>
#include <chrono>
#include <cstdarg>
#include <ctime>
#include <filesystem>

#include "obs/export.h"

namespace pasa {
namespace obs {
namespace {

// UTC wall-clock "2026-08-06T12:34:56.789Z".
std::string IsoTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
  return buf;
}

std::string FormatV(const char* format, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, copy);
  va_end(copy);
  if (needed <= 0) return "";
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args);
  return out;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

Result<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return Status::InvalidArgument("unknown log level '" + std::string(name) +
                                 "' (debug|info|warn|error|off)");
}

Logger::~Logger() {
  if (file_ != nullptr) std::fclose(file_);
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

Status Logger::SetFile(const std::string& path, Format format) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Status::InvalidArgument("cannot create directory " +
                                     parent.string() + ": " + ec.message());
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open log file " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  format_ = format;
  return Status::Ok();
}

Status Logger::SetJsonlFile(const std::string& path) {
  return SetFile(path, Format::kJsonl);
}

Status Logger::SetHumanFile(const std::string& path) {
  return SetFile(path, Format::kHuman);
}

void Logger::UseStderr() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  format_ = Format::kHuman;
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view message, const LogFields& fields) {
  if (!Enabled(level) || level == LogLevel::kOff) return;
  const std::string ts = IsoTimestamp();
  std::string line;
  std::lock_guard<std::mutex> lock(mu_);
  if (format_ == Format::kJsonl) {
    line = "{\"ts\": \"" + ts + "\", \"level\": \"" + LogLevelName(level) +
           "\", \"component\": \"" + JsonEscape(std::string(component)) +
           "\", \"msg\": \"" + JsonEscape(std::string(message)) + "\"";
    for (const auto& [key, value] : fields) {
      line += ", \"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
    }
    line += "}\n";
  } else {
    char head[16];
    std::snprintf(head, sizeof(head), "%-5s",
                  LogLevelName(level));  // align columns
    for (char* c = head; *c != '\0'; ++c) {
      *c = static_cast<char>(std::toupper(static_cast<unsigned char>(*c)));
    }
    line = ts + " " + head + " [" + std::string(component) + "] " +
           std::string(message);
    for (const auto& [key, value] : fields) {
      line += " " + key + "=" + value;
    }
    line += "\n";
  }
  std::FILE* out = file_ != nullptr ? file_ : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

void Logf(LogLevel level, const char* component, const char* format, ...) {
  if (!Logger::Global().Enabled(level)) return;
  va_list args;
  va_start(args, format);
  const std::string message = FormatV(format, args);
  va_end(args);
  Logger::Global().Log(level, component, message);
}

#define PASA_OBS_LOGF_BODY(Level)                            \
  if (!Logger::Global().Enabled(Level)) return;              \
  va_list args;                                              \
  va_start(args, format);                                    \
  const std::string message = FormatV(format, args);         \
  va_end(args);                                              \
  Logger::Global().Log(Level, component, message)

void LogDebug(const char* component, const char* format, ...) {
  PASA_OBS_LOGF_BODY(LogLevel::kDebug);
}
void LogInfo(const char* component, const char* format, ...) {
  PASA_OBS_LOGF_BODY(LogLevel::kInfo);
}
void LogWarn(const char* component, const char* format, ...) {
  PASA_OBS_LOGF_BODY(LogLevel::kWarn);
}
void LogError(const char* component, const char* format, ...) {
  PASA_OBS_LOGF_BODY(LogLevel::kError);
}

#undef PASA_OBS_LOGF_BODY

}  // namespace obs
}  // namespace pasa
