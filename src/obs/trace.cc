#include "obs/trace.h"

#include <vector>

#include "obs/profile.h"
#include "obs/trace_context.h"
#include "obs/trace_sink.h"

namespace pasa {
namespace obs {
namespace {

// Stack of full paths of the spans open on this thread, innermost last.
thread_local std::vector<std::string> tls_span_stack;
const std::string kEmptyPath;

}  // namespace

ScopedSpan::ScopedSpan(std::string_view name, Anchor anchor) {
  if (!Enabled()) return;
  active_ = true;
  if (anchor == kNested && !tls_span_stack.empty()) {
    path_.reserve(tls_span_stack.back().size() + 1 + name.size());
    path_ = tls_span_stack.back();
    path_ += '/';
    path_ += name;
  } else {
    path_ = std::string(name);
  }
  tls_span_stack.push_back(path_);
  // One relaxed load while the profiler is disarmed (the common case).
  if (ProfilerArmed()) ProfilerPublishPath(path_);
  // One thread-local read while no distributed trace is active (the common
  // case); with a context, take over as the innermost span.
  if (TraceContext* ctx = MutableCurrentTraceContext()) {
    trace_id_ = ctx->trace_id;
    parent_span_id_ = ctx->span_id;
    span_id_ = NewSpanId();
    flow_in_ = ctx->remote;
    ctx->remote = false;
    ctx->span_id = span_id_;
  }
  TraceEventSink& sink = TraceEventSink::Global();
  if (sink.active()) {
    if (trace_id_ != 0) {
      sink.RecordSpanEvent(TraceEvent::Type::kBegin, path_, trace_id_,
                           span_id_, parent_span_id_, flow_in_);
    } else {
      sink.Record(TraceEvent::Type::kBegin, path_);
    }
  }
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  TraceEventSink& sink = TraceEventSink::Global();
  if (sink.active()) {
    if (trace_id_ != 0) {
      sink.RecordSpanEvent(TraceEvent::Type::kEnd, path_, trace_id_,
                           span_id_, parent_span_id_, false);
    } else {
      sink.Record(TraceEvent::Type::kEnd, path_);
    }
  }
  tls_span_stack.pop_back();
  if (ProfilerArmed()) {
    ProfilerPublishPath(tls_span_stack.empty() ? kEmptyPath
                                               : tls_span_stack.back());
  }
  if (trace_id_ != 0) {
    if (TraceContext* ctx = MutableCurrentTraceContext()) {
      ctx->span_id = parent_span_id_;
    }
    if (SpanCollector* collector = CurrentSpanCollector()) {
      collector->spans.push_back(CollectedSpan{
          span_id_, parent_span_id_, path_,
          std::chrono::duration<double, std::micro>(start_ - collector->base)
              .count(),
          seconds * 1e6});
    }
  }
  // Record directly (not via RecordSpan) so a span that was open when the
  // layer got disabled still reports its measured time.
  MetricsRegistry::Global().GetSpanStats(path_).Record(seconds);
}

const std::string& CurrentSpanPath() {
  return tls_span_stack.empty() ? kEmptyPath : tls_span_stack.back();
}

}  // namespace obs
}  // namespace pasa
