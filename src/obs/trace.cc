#include "obs/trace.h"

#include <vector>

#include "obs/profile.h"
#include "obs/trace_sink.h"

namespace pasa {
namespace obs {
namespace {

// Stack of full paths of the spans open on this thread, innermost last.
thread_local std::vector<std::string> tls_span_stack;
const std::string kEmptyPath;

}  // namespace

ScopedSpan::ScopedSpan(std::string_view name, Anchor anchor) {
  if (!Enabled()) return;
  active_ = true;
  if (anchor == kNested && !tls_span_stack.empty()) {
    path_.reserve(tls_span_stack.back().size() + 1 + name.size());
    path_ = tls_span_stack.back();
    path_ += '/';
    path_ += name;
  } else {
    path_ = std::string(name);
  }
  tls_span_stack.push_back(path_);
  // One relaxed load while the profiler is disarmed (the common case).
  if (ProfilerArmed()) ProfilerPublishPath(path_);
  TraceEventSink& sink = TraceEventSink::Global();
  if (sink.active()) sink.Record(TraceEvent::Type::kBegin, path_);
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  TraceEventSink& sink = TraceEventSink::Global();
  if (sink.active()) sink.Record(TraceEvent::Type::kEnd, path_);
  tls_span_stack.pop_back();
  if (ProfilerArmed()) {
    ProfilerPublishPath(tls_span_stack.empty() ? kEmptyPath
                                               : tls_span_stack.back());
  }
  // Record directly (not via RecordSpan) so a span that was open when the
  // layer got disabled still reports its measured time.
  MetricsRegistry::Global().GetSpanStats(path_).Record(seconds);
}

const std::string& CurrentSpanPath() {
  return tls_span_stack.empty() ? kEmptyPath : tls_span_stack.back();
}

}  // namespace obs
}  // namespace pasa
