#include "obs/provenance.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/export.h"
#include "obs/mem.h"
#include "obs/trace_context.h"

namespace pasa {
namespace obs {
namespace {

thread_local ProvenanceRecord* g_current_record = nullptr;

/// Exact JSON formatting for doubles: %.17g round-trips every finite value
/// through strtod, which the field-for-field audit round-trip test relies
/// on (the exporters' JsonNumber uses %.12g and is lossy by design).
std::string ExactNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s = buf;
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

void AppendField(std::string* out, const char* key, const std::string& value,
                 bool quoted) {
  if (out->size() > 1) *out += ',';
  *out += '"';
  *out += key;
  *out += "\":";
  if (quoted) {
    *out += '"';
    *out += JsonEscape(value);
    *out += '"';
  } else {
    *out += value;
  }
}

void AppendInt(std::string* out, const char* key, int64_t v) {
  AppendField(out, key, std::to_string(v), /*quoted=*/false);
}

void AppendUint(std::string* out, const char* key, uint64_t v) {
  AppendField(out, key, std::to_string(v), /*quoted=*/false);
}

void AppendBool(std::string* out, const char* key, bool v) {
  AppendField(out, key, v ? "true" : "false", /*quoted=*/false);
}

void AppendDouble(std::string* out, const char* key, double v) {
  AppendField(out, key, ExactNumber(v), /*quoted=*/false);
}

double NumberOr(const json::Value& obj, const char* key, double fallback) {
  const json::Value* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

bool BoolOr(const json::Value& obj, const char* key, bool fallback) {
  const json::Value* v = obj.Find(key);
  return v != nullptr && v->is_bool() ? v->boolean() : fallback;
}

std::string StringOr(const json::Value& obj, const char* key,
                     const std::string& fallback) {
  const json::Value* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->str() : fallback;
}

}  // namespace

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kServed:
      return "served";
    case RequestOutcome::kDegraded:
      return "degraded";
    case RequestOutcome::kFailed:
      return "failed";
    case RequestOutcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

Result<RequestOutcome> ParseRequestOutcome(std::string_view name) {
  if (name == "served") return RequestOutcome::kServed;
  if (name == "degraded") return RequestOutcome::kDegraded;
  if (name == "failed") return RequestOutcome::kFailed;
  if (name == "rejected") return RequestOutcome::kRejected;
  return Status::InvalidArgument("unknown request outcome '" +
                                 std::string(name) + "'");
}

void AddFaultFire(ProvenanceRecord* record, std::string_view point) {
  auto& fires = record->fault_fires;
  const auto it = std::lower_bound(
      fires.begin(), fires.end(), point,
      [](const std::pair<std::string, uint32_t>& entry,
         std::string_view key) { return entry.first < key; });
  if (it != fires.end() && it->first == point) {
    ++it->second;
    return;
  }
  fires.insert(it, {std::string(point), 1});
}

std::string ProvenanceToJsonl(const ProvenanceRecord& r) {
  std::string out = "{";
  AppendInt(&out, "rid", r.rid);
  AppendInt(&out, "sender", r.sender);
  AppendField(&out, "outcome", RequestOutcomeName(r.outcome),
              /*quoted=*/true);
  AppendField(&out, "status", r.status, /*quoted=*/true);
  if (r.trace_id != 0) {
    AppendField(&out, "trace_id", TraceIdHex(r.trace_id), /*quoted=*/true);
  }
  AppendInt(&out, "k", r.k);
  AppendInt(&out, "cloak_x1", r.cloak_x1);
  AppendInt(&out, "cloak_y1", r.cloak_y1);
  AppendInt(&out, "cloak_x2", r.cloak_x2);
  AppendInt(&out, "cloak_y2", r.cloak_y2);
  AppendInt(&out, "cloak_area", r.cloak_area);
  AppendInt(&out, "policy_node", r.policy_node);
  AppendField(&out, "tree_path", r.tree_path, /*quoted=*/true);
  AppendInt(&out, "node_depth", r.node_depth);
  AppendUint(&out, "group_size", r.group_size);
  AppendUint(&out, "passed_up", r.passed_up);
  AppendBool(&out, "cache_hit", r.cache_hit);
  AppendBool(&out, "stale_fallback", r.stale_fallback);
  AppendUint(&out, "lbs_attempts", r.lbs_attempts);
  AppendUint(&out, "lbs_retries", r.lbs_retries);
  AppendBool(&out, "breaker_rejected", r.breaker_rejected);
  AppendBool(&out, "deadline_exceeded", r.deadline_exceeded);
  AppendDouble(&out, "lbs_simulated_micros", r.lbs_simulated_micros);
  std::string fires = "{";
  for (size_t i = 0; i < r.fault_fires.size(); ++i) {
    if (i > 0) fires += ',';
    fires += '"';
    fires += JsonEscape(r.fault_fires[i].first);
    fires += "\":";
    fires += std::to_string(r.fault_fires[i].second);
  }
  fires += '}';
  AppendField(&out, "fault_fires", fires, /*quoted=*/false);
  AppendDouble(&out, "total_seconds", r.total_seconds);
  AppendDouble(&out, "cloak_seconds", r.cloak_seconds);
  AppendDouble(&out, "lbs_seconds", r.lbs_seconds);
  AppendDouble(&out, "net_decode_seconds", r.net_decode_seconds);
  AppendDouble(&out, "net_queue_seconds", r.net_queue_seconds);
  AppendDouble(&out, "net_encode_seconds", r.net_encode_seconds);
  out += '}';
  return out;
}

Result<ProvenanceRecord> ProvenanceFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("provenance record is not a JSON object");
  }
  ProvenanceRecord r;
  Result<RequestOutcome> outcome =
      ParseRequestOutcome(StringOr(value, "outcome", "rejected"));
  if (!outcome.ok()) return outcome.status();
  r.outcome = *outcome;
  r.rid = static_cast<int64_t>(NumberOr(value, "rid", 0));
  r.sender = static_cast<int64_t>(NumberOr(value, "sender", 0));
  r.status = StringOr(value, "status", "OK");
  r.trace_id = TraceIdFromHex(StringOr(value, "trace_id", ""));
  r.k = static_cast<int32_t>(NumberOr(value, "k", 0));
  r.cloak_x1 = static_cast<int64_t>(NumberOr(value, "cloak_x1", 0));
  r.cloak_y1 = static_cast<int64_t>(NumberOr(value, "cloak_y1", 0));
  r.cloak_x2 = static_cast<int64_t>(NumberOr(value, "cloak_x2", 0));
  r.cloak_y2 = static_cast<int64_t>(NumberOr(value, "cloak_y2", 0));
  r.cloak_area = static_cast<int64_t>(NumberOr(value, "cloak_area", 0));
  r.policy_node = static_cast<int32_t>(NumberOr(value, "policy_node", -1));
  r.tree_path = StringOr(value, "tree_path", "");
  r.node_depth = static_cast<int32_t>(NumberOr(value, "node_depth", -1));
  r.group_size = static_cast<uint64_t>(NumberOr(value, "group_size", 0));
  r.passed_up = static_cast<uint64_t>(NumberOr(value, "passed_up", 0));
  r.cache_hit = BoolOr(value, "cache_hit", false);
  r.stale_fallback = BoolOr(value, "stale_fallback", false);
  r.lbs_attempts = static_cast<uint32_t>(NumberOr(value, "lbs_attempts", 0));
  r.lbs_retries = static_cast<uint32_t>(NumberOr(value, "lbs_retries", 0));
  r.breaker_rejected = BoolOr(value, "breaker_rejected", false);
  r.deadline_exceeded = BoolOr(value, "deadline_exceeded", false);
  r.lbs_simulated_micros = NumberOr(value, "lbs_simulated_micros", 0.0);
  if (const json::Value* fires = value.Find("fault_fires");
      fires != nullptr && fires->is_object()) {
    // json objects are sorted maps, matching AddFaultFire's ordering.
    for (const auto& [point, count] : fires->object()) {
      r.fault_fires.emplace_back(
          point, static_cast<uint32_t>(count.number()));
    }
  }
  r.total_seconds = NumberOr(value, "total_seconds", 0.0);
  r.cloak_seconds = NumberOr(value, "cloak_seconds", 0.0);
  r.lbs_seconds = NumberOr(value, "lbs_seconds", 0.0);
  r.net_decode_seconds = NumberOr(value, "net_decode_seconds", 0.0);
  r.net_queue_seconds = NumberOr(value, "net_queue_seconds", 0.0);
  r.net_encode_seconds = NumberOr(value, "net_encode_seconds", 0.0);
  return r;
}

Result<std::vector<ProvenanceRecord>> ParseProvenanceJsonl(
    std::string_view text) {
  std::vector<ProvenanceRecord> records;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find('\n', start);
    const std::string_view line = text.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    ++line_number;
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    Result<json::Value> value = json::Parse(line);
    if (!value.ok()) {
      return Status::InvalidArgument(
          "audit line " + std::to_string(line_number) + ": " +
          value.status().ToString());
    }
    Result<ProvenanceRecord> record = ProvenanceFromJson(*value);
    if (!record.ok()) {
      return Status::InvalidArgument(
          "audit line " + std::to_string(line_number) + ": " +
          record.status().ToString());
    }
    records.push_back(std::move(*record));
  }
  return records;
}

Result<std::vector<ProvenanceRecord>> ReadProvenanceJsonlFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot read audit file " + path);
  std::ostringstream content;
  content << file.rdbuf();
  return ParseProvenanceJsonl(content.str());
}

/// The append-on-record JSONL sink behind StreamTo.
struct ProvenanceRing::Stream {
  std::ofstream file;
};

ProvenanceRing::ProvenanceRing() = default;
ProvenanceRing::~ProvenanceRing() = default;

ProvenanceRing& ProvenanceRing::Global() {
  static ProvenanceRing* ring = new ProvenanceRing();
  return *ring;
}

Status ProvenanceRing::StreamTo(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    fs::create_directories(parent, ec);
  }
  auto stream = std::make_unique<Stream>();
  stream->file.open(path, std::ios::out | std::ios::trunc);
  if (!stream->file) {
    return Status::NotFound("cannot open audit stream " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  stream_ = std::move(stream);
  streamed_ = 0;
  return Status::Ok();
}

void ProvenanceRing::StopStreaming() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_ != nullptr) stream_->file.flush();
  stream_.reset();
}

bool ProvenanceRing::streaming() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_ != nullptr;
}

uint64_t ProvenanceRing::streamed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return streamed_;
}

void ProvenanceRing::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  ring_.clear();
  appended_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void ProvenanceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  appended_ = 0;
}

void ProvenanceRing::Append(ProvenanceRecord record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_ != nullptr) {
    stream_->file << ProvenanceToJsonl(record) << '\n';
    ++streamed_;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[appended_ % capacity_] = std::move(record);
  }
  ++appended_;
}

size_t ProvenanceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

size_t ProvenanceRing::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

uint64_t ProvenanceRing::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

uint64_t ProvenanceRing::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_ > ring_.size() ? appended_ - ring_.size() : 0;
}

uint64_t ProvenanceRing::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes =
      static_cast<uint64_t>(ring_.capacity()) * sizeof(ProvenanceRecord);
  for (const ProvenanceRecord& r : ring_) {
    bytes += obs::StringApproxBytes(r.status) +
             obs::StringApproxBytes(r.tree_path);
    bytes += static_cast<uint64_t>(r.fault_fires.capacity()) *
             sizeof(std::pair<std::string, uint32_t>);
    for (const auto& [point, fires] : r.fault_fires) {
      bytes += obs::StringApproxBytes(point);
    }
  }
  return bytes;
}

std::vector<ProvenanceRecord> ProvenanceRing::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProvenanceRecord> out;
  out.reserve(ring_.size());
  // Once wrapped, the oldest retained record sits at appended_ % capacity_.
  const size_t first =
      appended_ > ring_.size() ? appended_ % capacity_ : 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

Status ProvenanceRing::WriteJsonlFile(const std::string& path) const {
  std::string content;
  for (const ProvenanceRecord& record : Records()) {
    content += ProvenanceToJsonl(record);
    content += '\n';
  }
  return WriteTextFile(path, content);
}

ProvenanceRecord* CurrentProvenance() { return g_current_record; }

ScopedProvenanceRecord::ScopedProvenanceRecord()
    : active_(ProvenanceRing::Global().enabled() &&
              g_current_record == nullptr) {
  if (!active_) return;
  g_current_record = &record_;
  start_ = std::chrono::steady_clock::now();
}

ScopedProvenanceRecord::~ScopedProvenanceRecord() {
  if (!active_) return;
  record_.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  g_current_record = nullptr;
  ProvenanceRing::Global().Append(std::move(record_));
}

}  // namespace obs
}  // namespace pasa
