#ifndef PASA_OBS_LOG_H_
#define PASA_OBS_LOG_H_

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pasa {
namespace obs {

/// Severity, ordered: a message is emitted iff its level >= the logger's
/// runtime minimum. kOff silences everything.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Short stable lowercase name ("debug", "info", "warn", "error", "off").
const char* LogLevelName(LogLevel level);

/// Parses a level name (case-insensitive); InvalidArgument on anything
/// else. Accepts "warning" as an alias of "warn".
Result<LogLevel> ParseLogLevel(std::string_view name);

/// Optional structured key/value payload attached to a log record.
using LogFields = std::vector<std::pair<std::string, std::string>>;

/// Process-wide leveled, component-tagged logger replacing the ad-hoc
/// printf/fprintf scattered through the pipeline. Two sink formats:
///
///  - human (default, stderr):
///      2026-08-06T12:34:56.789Z INFO  [csp] snapshot advanced moves=128
///  - JSONL (one object per line, for ingestion):
///      {"ts":"...","level":"info","component":"csp",
///       "msg":"snapshot advanced","moves":"128"}
///
/// The level check is one relaxed atomic load, so disabled-level call
/// sites cost nothing beyond evaluating their arguments; use
/// Logger::Global().Enabled(level) to guard expensive formatting.
/// Emission itself serializes on a mutex (log lines never interleave).
class Logger {
 public:
  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger();

  /// The process-wide logger all components write to.
  static Logger& Global();

  void SetLevel(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  /// Routes output to `path` as JSONL (creating parent directories).
  /// Replaces any previous file sink.
  Status SetJsonlFile(const std::string& path);

  /// Routes output to `path` in the human format.
  Status SetHumanFile(const std::string& path);

  /// Restores the default human-format stderr sink.
  void UseStderr();

  /// Emits one record if `level` passes the filter. `component` is a short
  /// subsystem tag ("csp", "parallel", "anonymizer", "incremental", "cli",
  /// "benchstat"); `fields` are appended as key=value (human) or extra
  /// JSON members (JSONL).
  void Log(LogLevel level, std::string_view component,
           std::string_view message, const LogFields& fields = {});

 private:
  enum class Format { kHuman, kJsonl };
  Status SetFile(const std::string& path, Format format);

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::mutex mu_;
  std::FILE* file_ = nullptr;  ///< owned when non-null; else stderr
  Format format_ = Format::kHuman;
};

/// printf-style convenience wrappers over Logger::Global(). The level
/// filter is applied before formatting, so a suppressed call never
/// formats its message.
void Logf(LogLevel level, const char* component, const char* format, ...)
    __attribute__((format(printf, 3, 4)));
void LogDebug(const char* component, const char* format, ...)
    __attribute__((format(printf, 2, 3)));
void LogInfo(const char* component, const char* format, ...)
    __attribute__((format(printf, 2, 3)));
void LogWarn(const char* component, const char* format, ...)
    __attribute__((format(printf, 2, 3)));
void LogError(const char* component, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_LOG_H_
