#include "obs/tail_trace.h"

#include <algorithm>
#include <chrono>

#include "obs/export.h"
#include "obs/mem.h"

namespace pasa {
namespace obs {
namespace {

uint64_t WallMicrosNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void AppendTrace(std::string* out, const TailTrace& trace) {
  *out += "{\"trace_id\": \"" + TraceIdHex(trace.trace_id) + "\"";
  *out += ", \"rid\": " + std::to_string(trace.rid);
  *out += ", \"outcome\": \"" + JsonEscape(trace.outcome) + "\"";
  *out += ", \"total_seconds\": " + JsonNumber(trace.total_seconds);
  *out += ", \"completed_wall_micros\": " +
          std::to_string(trace.completed_wall_micros);
  *out += ", \"spans\": [";
  bool first = true;
  for (const CollectedSpan& span : trace.spans) {
    if (!first) *out += ", ";
    first = false;
    *out += "{\"span_id\": \"" + TraceIdHex(span.span_id) + "\"";
    *out += ", \"parent_span_id\": \"" + TraceIdHex(span.parent_span_id) +
            "\"";
    *out += ", \"path\": \"" + JsonEscape(span.path) + "\"";
    *out += ", \"start_micros\": " + JsonNumber(span.start_micros);
    *out += ", \"duration_micros\": " + JsonNumber(span.duration_micros);
    *out += "}";
  }
  *out += "]}";
}

}  // namespace

TailTraceRing& TailTraceRing::Global() {
  static TailTraceRing* ring = new TailTraceRing();
  return *ring;
}

void TailTraceRing::Enable(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.slowest_capacity == 0) options_.slowest_capacity = 1;
  if (options_.anomaly_capacity == 0) options_.anomaly_capacity = 1;
  if (options_.window_seconds <= 0.0) options_.window_seconds = 60.0;
  enabled_.store(true, std::memory_order_relaxed);
}

void TailTraceRing::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TailTraceRing::EvictExpiredLocked(uint64_t now_micros) {
  const uint64_t window_micros =
      static_cast<uint64_t>(options_.window_seconds * 1e6);
  const uint64_t horizon =
      now_micros > window_micros ? now_micros - window_micros : 0;
  slowest_.erase(
      std::remove_if(slowest_.begin(), slowest_.end(),
                     [horizon](const TailTrace& t) {
                       return t.completed_wall_micros < horizon;
                     }),
      slowest_.end());
}

void TailTraceRing::Offer(TailTrace trace) {
  if (!enabled()) return;
  if (trace.completed_wall_micros == 0) {
    trace.completed_wall_micros = WallMicrosNow();
  }
  std::lock_guard<std::mutex> lock(mu_);
  EvictExpiredLocked(trace.completed_wall_micros);
  if (trace.outcome != "served") {
    anomalies_.push_back(trace);
    while (anomalies_.size() > options_.anomaly_capacity) {
      anomalies_.pop_front();
      anomalies_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (slowest_.size() < options_.slowest_capacity ||
      trace.total_seconds > slowest_.back().total_seconds) {
    // Insert keeping the vector sorted slowest-first, then trim.
    const auto pos = std::upper_bound(
        slowest_.begin(), slowest_.end(), trace.total_seconds,
        [](double v, const TailTrace& t) { return v > t.total_seconds; });
    slowest_.insert(pos, std::move(trace));
    if (slowest_.size() > options_.slowest_capacity) slowest_.pop_back();
  }
}

std::string TailTraceRing::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"window_seconds\": " +
                    JsonNumber(options_.window_seconds) + ",\n\"slowest\": [";
  bool first = true;
  for (const TailTrace& trace : slowest_) {
    out += first ? "\n " : ",\n ";
    first = false;
    AppendTrace(&out, trace);
  }
  out += "\n],\n\"anomalies\": [";
  first = true;
  // Newest anomaly first: the interesting one when debugging live.
  for (auto it = anomalies_.rbegin(); it != anomalies_.rend(); ++it) {
    out += first ? "\n " : ",\n ";
    first = false;
    AppendTrace(&out, *it);
  }
  out += "\n]}\n";
  return out;
}

size_t TailTraceRing::slowest_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_.size();
}

size_t TailTraceRing::anomaly_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return anomalies_.size();
}

namespace {

uint64_t TraceApproxBytes(const TailTrace& trace) {
  uint64_t bytes = obs::StringApproxBytes(trace.outcome);
  bytes += static_cast<uint64_t>(trace.spans.capacity()) *
           sizeof(CollectedSpan);
  for (const CollectedSpan& span : trace.spans) {
    bytes += obs::StringApproxBytes(span.path);
  }
  return bytes;
}

}  // namespace

uint64_t TailTraceRing::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes =
      static_cast<uint64_t>(slowest_.capacity()) * sizeof(TailTrace) +
      static_cast<uint64_t>(anomalies_.size()) * sizeof(TailTrace);
  for (const TailTrace& trace : slowest_) bytes += TraceApproxBytes(trace);
  for (const TailTrace& trace : anomalies_) bytes += TraceApproxBytes(trace);
  return bytes;
}

void TailTraceRing::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  slowest_.clear();
  anomalies_.clear();
  anomalies_dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace pasa
