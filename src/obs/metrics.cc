#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/log.h"

namespace pasa {
namespace obs {
namespace {

std::atomic<bool> g_enabled{true};

// CAS-fold `v` into `slot` keeping the smaller (larger) value.
void AtomicMin(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Configure(const ObsOptions& options) {
  g_enabled.store(options.enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  // Prometheus `le` semantics: a value equal to an upper bound belongs in
  // that bound's bucket, so find the first bound >= value.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Observe(double value, uint64_t exemplar_trace_id) {
  if (!Enabled()) return;
  Observe(value);
  if (exemplar_trace_id == 0) return;
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (exemplars_.empty()) exemplars_.resize(buckets_.size());
  Exemplar& slot = exemplars_[idx];
  // Max-value-wins keeps the exemplar deterministic under replays: the
  // bucket always points at its slowest traced observation.
  if (slot.trace_id == 0 || value > slot.value) {
    slot.value = value;
    slot.trace_id = exemplar_trace_id;
  }
}

std::vector<Histogram::Exemplar> Histogram::exemplars() const {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  return exemplars_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  exemplars_.clear();
}

void SpanStats::Record(double seconds, uint64_t count) {
  count_.fetch_add(count, std::memory_order_relaxed);
  total_seconds_.fetch_add(seconds, std::memory_order_relaxed);
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    // First recorder seeds min/max; racing recorders fold below, so the
    // worst case is a transiently widened min (0.0) never a lost update.
    min_seconds_.store(seconds, std::memory_order_relaxed);
    max_seconds_.store(seconds, std::memory_order_relaxed);
    return;
  }
  AtomicMin(&min_seconds_, seconds);
  AtomicMax(&max_seconds_, seconds);
}

double SpanStats::min_seconds() const {
  return any_.load(std::memory_order_relaxed)
             ? min_seconds_.load(std::memory_order_relaxed)
             : std::numeric_limits<double>::quiet_NaN();
}

double SpanStats::max_seconds() const {
  return any_.load(std::memory_order_relaxed)
             ? max_seconds_.load(std::memory_order_relaxed)
             : std::numeric_limits<double>::quiet_NaN();
}

void SpanStats::Reset() {
  count_.store(0, std::memory_order_relaxed);
  total_seconds_.store(0.0, std::memory_order_relaxed);
  min_seconds_.store(0.0, std::memory_order_relaxed);
  max_seconds_.store(0.0, std::memory_order_relaxed);
  any_.store(false, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double> kBuckets = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
      5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0};
  return kBuckets;
}

std::string PromLabelValueEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string LabeledName(const std::string& name,
                        const std::map<std::string, std::string>& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    // Prometheus label names: [a-zA-Z_][a-zA-Z0-9_]*.
    for (size_t i = 0; i < key.size(); ++i) {
      const char c = key[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      c == '_' || (i > 0 && c >= '0' && c <= '9');
      out += ok ? c : '_';
    }
    if (key.empty()) out += '_';
    out += "=\"";
    out += PromLabelValueEscape(value);
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  bool mismatched = false;
  Histogram* histogram = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) {
      slot = std::make_unique<Histogram>(upper_bounds.empty()
                                             ? DefaultLatencyBuckets()
                                             : std::move(upper_bounds));
    } else if (!upper_bounds.empty()) {
      std::sort(upper_bounds.begin(), upper_bounds.end());
      mismatched = upper_bounds != slot->upper_bounds();
    }
    histogram = slot.get();
  }
  // Emitting outside the lock: LogWarn/GetCounter must not run under the
  // non-recursive registry mutex.
  if (mismatched) {
    LogWarn("obs",
            "GetHistogram(\"%s\") called with bounds that differ from the "
            "registered ones; keeping first-registration bounds",
            name.c_str());
    GetCounter("obs/histogram_bounds_mismatches").Increment();
  }
  return *histogram;
}

SpanStats& MetricsRegistry::GetSpanStats(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = spans_[path];
  if (!slot) slot = std::make_unique<SpanStats>();
  return *slot;
}

void MetricsRegistry::RecordSpan(const std::string& path, double seconds,
                                 uint64_t count) {
  if (!Enabled()) return;
  GetSpanStats(path).Record(seconds, count);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, s] : spans_) s->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, c] : counters_) snapshot.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snapshot.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.upper_bounds = h->upper_bounds();
    data.bucket_counts = h->bucket_counts();
    data.count = h->count();
    data.sum = h->sum();
    const std::vector<Histogram::Exemplar> exemplars = h->exemplars();
    if (!exemplars.empty()) {
      data.exemplar_values.reserve(exemplars.size());
      data.exemplar_trace_ids.reserve(exemplars.size());
      for (const Histogram::Exemplar& e : exemplars) {
        data.exemplar_values.push_back(e.value);
        data.exemplar_trace_ids.push_back(e.trace_id);
      }
    }
    snapshot.histograms[name] = std::move(data);
  }
  for (const auto& [name, s] : spans_) {
    MetricsSnapshot::SpanData data;
    data.count = s->count();
    data.total_seconds = s->total_seconds();
    const double mn = s->min_seconds();
    const double mx = s->max_seconds();
    data.min_seconds = std::isnan(mn) ? 0.0 : mn;
    data.max_seconds = std::isnan(mx) ? 0.0 : mx;
    snapshot.spans[name] = data;
  }
  return snapshot;
}

}  // namespace obs
}  // namespace pasa
