#ifndef PASA_OBS_PROFILE_H_
#define PASA_OBS_PROFILE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace pasa {
namespace obs {

/// Tuning for the span-sampling profiler.
struct ProfilerOptions {
  /// Sampling frequency of the background sampler. hz <= 0 arms the
  /// profiler WITHOUT spawning the sampler thread — samples are then taken
  /// only by explicit SampleOnce() calls, which is how the determinism
  /// tests drive a fixed schedule.
  double hz = 97.0;
  /// Fixed capacity of the sample ring; the oldest samples are overwritten
  /// once it is full. 65536 samples at 97 Hz covers ~11 minutes.
  size_t capacity = 65536;
};

/// Always-on sampling profiler over the existing ScopedSpan
/// instrumentation: a background thread periodically records the innermost
/// open span path of every live thread (which, thanks to nested-span path
/// concatenation, IS the thread's full instrumented call path) into a
/// fixed-capacity ring, and aggregates the ring into a weighted call tree
/// exported as collapsed-stack folded text (flamegraph.pl / speedscope
/// loadable) and a self-time summary table.
///
/// Costs: while DISARMED, the hook inside ScopedSpan is one relaxed atomic
/// load (gated by bench_profile_overhead like the other obs kill
/// switches). While armed, each span push/pop additionally takes a
/// per-thread mutex to publish the new path, and the sampler takes one
/// mutex sweep per sample period.
///
/// Span paths only exist while the obs layer is enabled (a disabled
/// ScopedSpan is inert), so a disabled obs layer also means an empty
/// profile.
class Profiler {
 public:
  /// The process-wide profiler the ScopedSpan hook publishes to.
  static Profiler& Global();

  /// One relaxed load; the ScopedSpan hook gates on this.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Arms the profiler and (for hz > 0) spawns the sampler thread.
  /// Retained samples from a previous arm survive (use Reset to drop
  /// them). Fails when already armed or capacity is 0.
  Status Start(const ProfilerOptions& options = {});

  /// Disarms and joins the sampler thread. Idempotent. Samples stay
  /// readable after Stop.
  void Stop();

  /// Takes one sample of every registered thread at time `now_micros`
  /// (caller's clock domain: the sampler thread passes NowMicros(), the
  /// determinism tests pass fixed values). Returns how many thread samples
  /// were recorded (threads with no open span contribute none).
  size_t SampleOnce(uint64_t now_micros);

  /// Collapsed-stack folded text over the samples recorded at or after
  /// `min_micros` (0 = every retained sample): one "frame;frame;frame N"
  /// line per distinct stack, sorted, newline-terminated. Span path
  /// components ('/'-separated) become folded frames.
  std::string CollapsedSince(uint64_t min_micros) const;

  /// CollapsedSince over the trailing `seconds` of the sampler's own clock
  /// (seconds <= 0: everything retained).
  std::string Collapsed(double seconds = 0.0) const;

  /// Human summary: per frame, self samples (sampled as the innermost
  /// frame), total samples (anywhere on the stack) and self%, sorted by
  /// self samples descending.
  std::string SelfTimeTableSince(uint64_t min_micros) const;
  std::string SelfTimeTable(double seconds = 0.0) const;

  /// Samples recorded since process start (monotonic; overwritten samples
  /// still count).
  uint64_t samples_taken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }
  /// Samples currently retained in the ring.
  size_t retained() const;

  /// Approximate heap bytes held by the sample ring and thread slots
  /// (memory accounting, obs/mem.h).
  uint64_t ApproxBytes() const;

  /// Drops every retained sample (registrations survive).
  void Reset();

  /// Steady-clock microseconds — the clock domain of the background
  /// sampler's timestamps.
  static uint64_t NowMicros();

 private:
  friend class ProfilerThreadHook;
  friend void ProfilerPublishPath(const std::string& path);

  struct Slot {
    std::mutex mu;
    std::string path;  ///< innermost open span path; "" when none
  };
  struct Sample {
    uint64_t micros = 0;
    std::string path;
  };

  Profiler() = default;

  Slot* RegisterThread();
  void UnregisterThread(Slot* slot);
  void SamplerLoop();
  /// Copies retained samples oldest-first; caller holds mu_.
  void SnapshotLocked(std::vector<Sample>* out) const;

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> samples_taken_{0};

  mutable std::mutex mu_;  ///< slots_ + ring_
  std::vector<std::shared_ptr<Slot>> slots_;
  std::vector<Sample> ring_;
  size_t ring_capacity_ = 0;
  size_t ring_next_ = 0;
  bool ring_wrapped_ = false;

  double hz_ = 0.0;
  std::thread sampler_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

/// Called by ScopedSpan (see trace.cc) after every push/pop while the
/// profiler is armed, with the thread's new innermost span path ("" once
/// the stack empties). Lazily registers the calling thread.
void ProfilerPublishPath(const std::string& path);

/// One relaxed load; what the ScopedSpan hook checks before publishing.
inline bool ProfilerArmed() { return Profiler::Global().armed(); }

}  // namespace obs
}  // namespace pasa

#endif  // PASA_OBS_PROFILE_H_
